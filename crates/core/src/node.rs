//! Type-erased template-task internals.
//!
//! A template task ("TT") matches incoming messages by task ID across all of
//! its input terminals; when every terminal has a complete input for some ID
//! a task instance is created and scheduled (paper §II). The public, fully
//! typed API lives in `graph`/`outs`; this module implements the matching
//! tables, streaming-terminal reduction, task launch, and the wire format of
//! active messages.

use std::any::Any;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::{Mutex, RwLock};
use ttg_comm::{ReadBuf, WireError, WriteBuf};

use crate::ctx::RuntimeCtx;
use crate::inspect::{EdgeDecl, KeymapProbe, MutationError, ReducerDecl, StuckEntry};
use crate::trace::{Dep, TaskEvent};
use crate::types::{ErasedVal, Key, LocalPass};

#[cfg(feature = "checked")]
use crate::inspect::Violation;

/// AM message type: inline (archive/trivial) data.
pub const MSG_DATA_INLINE: u8 = 0;
/// AM message type: split-metadata data (payload via RMA).
pub const MSG_DATA_SPLITMD: u8 = 1;
/// AM message type: set the expected stream size for a key.
pub const MSG_SET_SIZE: u8 = 2;
/// AM message type: finalize an unbounded stream for a key.
pub const MSG_FINALIZE: u8 = 3;

/// Type-erased reduction operator for a streaming terminal.
pub type ErasedReduce = Arc<dyn Fn(&mut Box<dyn Any + Send>, ErasedVal) + Send + Sync>;

/// Type-erased conversion of the first stream message into the accumulator.
pub type ErasedInit = Arc<dyn Fn(ErasedVal) -> Box<dyn Any + Send> + Send + Sync>;

/// Reducer installed on an input terminal (paper §II-B streaming terminals).
#[derive(Clone)]
pub struct ReducerSpec {
    /// Converts the first message into the accumulator.
    pub init: ErasedInit,
    /// Folds one more message into the accumulator.
    pub op: ErasedReduce,
    /// Default expected stream length (None = unbounded, requires
    /// finalize or a per-key size).
    pub default_size: Option<usize>,
}

/// Fixed (construction-time) per-terminal vtable.
pub struct InputMeta {
    /// Decode an inline value from an AM.
    pub decode:
        Arc<dyn Fn(&mut ReadBuf<'_>) -> Result<Box<dyn Any + Send>, WireError> + Send + Sync>,
    /// Decode a split-metadata value: metadata cursor + RMA payload bytes.
    pub decode_splitmd: Arc<
        dyn Fn(&mut ReadBuf<'_>, &[u8]) -> Result<Box<dyn Any + Send>, WireError> + Send + Sync,
    >,
    /// Clone an erased boxed value (for multi-key deliveries in `Copy`
    /// local-pass mode).
    pub clone_boxed: Arc<dyn Fn(&(dyn Any + Send)) -> Box<dyn Any + Send> + Send + Sync>,
    /// Promote an erased boxed value into a shared handle (for multi-key
    /// deliveries in `Share` local-pass mode: piggybacked consumers alias
    /// one allocation instead of each receiving a deep copy).
    pub to_shared: Arc<dyn Fn(Box<dyn Any + Send>) -> Arc<dyn Any + Send + Sync> + Send + Sync>,
    /// Re-encode a live slot value in place (checkpoint export). Fails on a
    /// type mismatch, which aborts the snapshot attempt gracefully.
    pub encode: Arc<dyn Fn(&ErasedVal, &mut WriteBuf) -> Result<(), WireError> + Send + Sync>,
    /// Re-encode a stream accumulator (checkpoint export). Fails when the
    /// accumulator type differs from the terminal's wire type — such
    /// terminals make the owning rank unsnapshottable, not broken.
    pub encode_boxed:
        Arc<dyn Fn(&(dyn Any + Send), &mut WriteBuf) -> Result<(), WireError> + Send + Sync>,
}

/// State of one input terminal for one pending task ID.
pub enum SlotE {
    /// No message yet.
    Empty,
    /// Single-message terminal, satisfied.
    Plain(ErasedVal),
    /// Streaming terminal accumulating messages.
    Stream {
        /// Reduction accumulator (None until the first message).
        acc: Option<Box<dyn Any + Send>>,
        /// Messages folded so far.
        received: usize,
        /// Expected stream length (terminal default or per-key override).
        expected: Option<usize>,
        /// Explicitly finalized via `finalize`.
        finalized: bool,
    },
}

impl SlotE {
    fn is_complete(&self) -> bool {
        match self {
            SlotE::Empty => false,
            SlotE::Plain(_) => true,
            SlotE::Stream {
                received,
                expected,
                finalized,
                ..
            } => *finalized || expected.is_some_and(|e| *received >= e),
        }
    }

    /// Human-readable state, for stuck-key deadlock reports.
    fn describe(&self) -> String {
        match self {
            SlotE::Empty => "empty (no message received)".into(),
            SlotE::Plain(_) => "filled".into(),
            SlotE::Stream {
                received,
                expected,
                finalized,
                ..
            } => match expected {
                Some(e) => format!(
                    "stream received {received} of {e}{}",
                    if *finalized { ", finalized" } else { "" }
                ),
                None => format!("unbounded stream received {received}, not finalized"),
            },
        }
    }
}

/// Terminal slots of one pending entry. Tasks with ≤ 2 inputs (the common
/// case) keep their slots inline in the map entry: no heap allocation per
/// pending key, and the slot write lands on the entry's already-hot
/// cachelines instead of chasing a `Vec` pointer. Wider tasks spill to a
/// `Vec`.
enum Slots {
    Inline { arr: [SlotE; 2], n: u8 },
    Spill(Vec<SlotE>),
}

impl Slots {
    fn new(n: usize) -> Self {
        if n <= 2 {
            Slots::Inline {
                arr: [SlotE::Empty, SlotE::Empty],
                n: n as u8,
            }
        } else {
            Slots::Spill((0..n).map(|_| SlotE::Empty).collect())
        }
    }

    fn get_mut(&mut self, i: usize) -> &mut SlotE {
        match self {
            Slots::Inline { arr, n } => {
                debug_assert!(i < *n as usize, "terminal {i} out of range");
                &mut arr[i]
            }
            Slots::Spill(v) => &mut v[i],
        }
    }

    fn as_slice(&self) -> &[SlotE] {
        match self {
            Slots::Inline { arr, n } => &arr[..*n as usize],
            Slots::Spill(v) => v,
        }
    }
}

enum SlotsIter {
    Inline(std::iter::Take<std::array::IntoIter<SlotE, 2>>),
    Spill(std::vec::IntoIter<SlotE>),
}

impl Iterator for SlotsIter {
    type Item = SlotE;
    fn next(&mut self) -> Option<SlotE> {
        match self {
            SlotsIter::Inline(it) => it.next(),
            SlotsIter::Spill(it) => it.next(),
        }
    }
}

impl IntoIterator for Slots {
    type Item = SlotE;
    type IntoIter = SlotsIter;
    fn into_iter(self) -> SlotsIter {
        match self {
            Slots::Inline { arr, n } => SlotsIter::Inline(arr.into_iter().take(n as usize)),
            Slots::Spill(v) => SlotsIter::Spill(v.into_iter()),
        }
    }
}

/// Matching-table entry: all terminal states plus trace provenance.
pub struct PendingE {
    slots: Slots,
    deps: Vec<Dep>,
}

impl PendingE {
    fn new(n: usize) -> Self {
        PendingE {
            slots: Slots::new(n),
            deps: Vec::new(),
        }
    }
    fn all_complete(&self) -> bool {
        self.slots.as_slice().iter().all(|s| s.is_complete())
    }
}

/// FxHash-style multiply-xor hasher for the matching table. Task keys are
/// runtime-generated, never attacker-controlled, so SipHash's hash-flooding
/// resistance buys nothing on this path while costing an order of magnitude
/// more per key than one rotate-xor-multiply round.
#[derive(Clone, Copy, Default)]
struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x517c_c1b7_2722_0a95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }
    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }
    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }
    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

#[derive(Clone, Copy, Default)]
struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;
    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// Lock-striped matching table of one rank.
///
/// Every message insert and AM delivery for a rank used to serialize behind
/// a single `Mutex<HashMap>`; striping the key space over `2 × workers`
/// shards (rounded up to a power of two) lets concurrent workers insert
/// disjoint keys without contending. A key always hashes to the same shard,
/// so per-key matching, streaming and completion semantics are untouched.
struct ShardedTable<K: Key> {
    shards: Vec<Mutex<HashMap<K, PendingE, FxBuildHasher>>>,
    mask: usize,
}

impl<K: Key> ShardedTable<K> {
    fn new(n_shards: usize) -> Self {
        let n = n_shards.max(1).next_power_of_two();
        ShardedTable {
            shards: (0..n)
                .map(|_| Mutex::new(HashMap::with_hasher(FxBuildHasher)))
                .collect(),
            mask: n - 1,
        }
    }

    fn shard(&self, k: &K) -> &Mutex<HashMap<K, PendingE, FxBuildHasher>> {
        // Pick the shard from the *high* half of the hash: the map inside the
        // shard buckets on the low bits of the same hash function, so using
        // disjoint bits avoids correlated bucket skew within a shard.
        let h = FxBuildHasher.hash_one(k);
        &self.shards[((h >> 32) as usize) & self.mask]
    }

    fn pending(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

/// Type-erased interface of a template task, used by the executor's
/// communication threads and diagnostics.
pub trait AnyNode: Send + Sync {
    /// Size the per-rank matching tables (called once by the executor).
    /// `workers_per_rank` sizes the lock stripes of each table.
    fn attach(&self, n_ranks: usize, workers_per_rank: usize);
    /// Deliver a serialized active message addressed to this node.
    fn deliver_am(
        &self,
        rank: usize,
        payload: &[u8],
        ctx: &Arc<RuntimeCtx>,
    ) -> Result<(), WireError>;
    /// Node id within its graph.
    fn node_id(&self) -> u32;
    /// Node name.
    fn node_name(&self) -> &'static str;
    /// Tasks executed so far.
    fn tasks_executed(&self) -> u64;
    /// Pending (incomplete) task IDs across all ranks.
    fn pending(&self) -> usize;
    /// Number of input terminals.
    fn num_inputs(&self) -> usize;
    /// Edge identity of each input terminal (index = terminal).
    fn input_edges(&self) -> Vec<EdgeDecl>;
    /// Edge identity of each output terminal (index = terminal).
    fn output_edges(&self) -> Vec<EdgeDecl>;
    /// Declared reducer of each input terminal (index = terminal).
    fn reducer_decls(&self) -> Vec<Option<ReducerDecl>>;
    /// Evaluate the keymap over the registered sample keys (twice per key,
    /// to catch nondeterminism). `None` when no samples were registered.
    fn probe_keymap(&self, n_ranks: usize) -> Option<KeymapProbe>;
    /// Detailed view of every partially matched key still pending across
    /// all ranks: the stuck-key deadlock report.
    fn pending_detail(&self) -> Vec<StuckEntry>;
    /// Serialize rank `rank`'s matching-table state into `b` (checkpoint
    /// section; DESIGN §13). Fails when a live slot cannot be re-encoded.
    fn export_rank(&self, rank: usize, b: &mut WriteBuf) -> Result<(), WireError>;
    /// Replace rank `rank`'s matching-table state with the snapshot in `r`.
    fn import_rank(&self, rank: usize, r: &mut ReadBuf<'_>) -> Result<(), WireError>;
    /// Drop rank `rank`'s matching-table state (restore-to-empty path).
    fn clear_rank(&self, rank: usize);
}

type InvokeFn<K> = Arc<dyn Fn(K, Vec<ErasedVal>, u64, usize, &Arc<RuntimeCtx>) + Send + Sync>;
type KeyMapFn<K> = Arc<dyn Fn(&K) -> usize + Send + Sync>;
type PrioMapFn<K> = Arc<dyn Fn(&K) -> i32 + Send + Sync>;
type CostMapFn<K> = Arc<dyn Fn(&K) -> u64 + Send + Sync>;

/// Node maps snapshotted at attach time. Registration (`set_keymap`,
/// `set_reducer`, …) happens while the graph is built, behind `RwLock`s;
/// once the executor attaches the node those maps are immutable, so the hot
/// paths (`owner`, `insert`, `launch`) read this lock-free snapshot instead
/// of hammering the lock words — which become contended cachelines when
/// several workers insert into one node concurrently.
struct FrozenMaps<K: Key> {
    keymap: KeyMapFn<K>,
    reducers: Vec<Option<ReducerSpec>>,
    priomap: Option<PrioMapFn<K>>,
    costmap: Option<CostMapFn<K>>,
}

/// The shared implementation behind every template task.
pub struct NodeInner<K: Key> {
    /// Node id within the graph.
    pub id: u32,
    /// Node name (for traces and debugging).
    pub name: &'static str,
    /// Number of input terminals.
    pub n_inputs: usize,
    tables: OnceLock<Vec<ShardedTable<K>>>,
    frozen: OnceLock<FrozenMaps<K>>,
    keymap: RwLock<KeyMapFn<K>>,
    priomap: RwLock<Option<PrioMapFn<K>>>,
    costmap: RwLock<Option<CostMapFn<K>>>,
    metas: Vec<InputMeta>,
    reducers: Vec<RwLock<Option<ReducerSpec>>>,
    invoke: OnceLock<InvokeFn<K>>,
    executed: Arc<AtomicU64>,
    topo: OnceLock<(Vec<EdgeDecl>, Vec<EdgeDecl>)>,
    check_samples: RwLock<Vec<K>>,
}

impl<K: Key> NodeInner<K> {
    /// Construct a node; `metas` has one entry per input terminal.
    pub fn new(id: u32, name: &'static str, metas: Vec<InputMeta>, keymap: KeyMapFn<K>) -> Self {
        let n_inputs = metas.len();
        NodeInner {
            id,
            name,
            n_inputs,
            tables: OnceLock::new(),
            frozen: OnceLock::new(),
            keymap: RwLock::new(keymap),
            priomap: RwLock::new(None),
            costmap: RwLock::new(None),
            metas,
            reducers: (0..n_inputs).map(|_| RwLock::new(None)).collect(),
            invoke: OnceLock::new(),
            executed: Arc::new(AtomicU64::new(0)),
            topo: OnceLock::new(),
            check_samples: RwLock::new(Vec::new()),
        }
    }

    /// Install the task body (done once by `make_tt`).
    pub fn set_invoke(&self, f: InvokeFn<K>) {
        if self.invoke.set(f).is_err() {
            panic!("invoke already set for node {}", self.name);
        }
    }

    /// Record the edge identities of the input and output terminals (done
    /// once by `make_tt`; consumed by the static verifier).
    pub fn set_topology(&self, inputs: Vec<EdgeDecl>, outputs: Vec<EdgeDecl>) {
        if self.topo.set((inputs, outputs)).is_err() {
            panic!("topology already set for node {}", self.name);
        }
    }

    /// Register sample keys for static keymap probing (`ttg-check`
    /// diagnostics TTG004/TTG005). Cheap to call unconditionally: the keys
    /// are only evaluated when a verifier runs.
    pub fn set_check_samples(&self, keys: Vec<K>) {
        *self.check_samples.write() = keys;
    }

    fn guard_mutation(&self, what: &'static str) -> Result<(), MutationError> {
        if self.frozen.get().is_some() {
            return Err(MutationError {
                node: self.name,
                what,
            });
        }
        Ok(())
    }

    /// Install a streaming reducer on terminal `t`. Fails with `TTG010`
    /// once the executor has frozen the node maps.
    pub fn set_reducer(&self, t: usize, spec: ReducerSpec) -> Result<(), MutationError> {
        self.guard_mutation("set_reducer")?;
        *self.reducers[t].write() = Some(spec);
        Ok(())
    }

    /// Replace the keymap. Fails with `TTG010` after executor attach.
    pub fn set_keymap(&self, f: KeyMapFn<K>) -> Result<(), MutationError> {
        self.guard_mutation("set_keymap")?;
        *self.keymap.write() = f;
        Ok(())
    }

    /// Install a priority map. Fails with `TTG010` after executor attach.
    pub fn set_priomap(&self, f: PrioMapFn<K>) -> Result<(), MutationError> {
        self.guard_mutation("set_priority_map")?;
        *self.priomap.write() = Some(f);
        Ok(())
    }

    /// Install a cost model for trace-based projection. Fails with `TTG010`
    /// after executor attach.
    pub fn set_costmap(&self, f: CostMapFn<K>) -> Result<(), MutationError> {
        self.guard_mutation("set_cost_model")?;
        *self.costmap.write() = Some(f);
        Ok(())
    }

    /// Rank owning task `k` (bounded by the fabric size).
    pub fn owner(&self, k: &K, n_ranks: usize) -> usize {
        match self.frozen.get() {
            Some(f) => (f.keymap)(k) % n_ranks,
            None => (self.keymap.read())(k) % n_ranks,
        }
    }

    /// Per-terminal vtable.
    pub fn meta(&self, t: usize) -> &InputMeta {
        &self.metas[t]
    }

    fn table(&self, rank: usize, k: &K) -> &Mutex<HashMap<K, PendingE, FxBuildHasher>> {
        self.tables.get().expect("node not attached")[rank].shard(k)
    }

    /// Insert a value for `(k, terminal)` into rank `rank`'s table,
    /// launching the task if this completes all inputs.
    pub fn insert(
        &self,
        rank: usize,
        terminal: usize,
        k: K,
        val: ErasedVal,
        dep: Dep,
        ctx: &Arc<RuntimeCtx>,
    ) {
        debug_assert_eq!(self.owner(&k, ctx.n_ranks()), rank, "misrouted message");
        let ready = {
            let mut table = self.table(rank, &k).lock();
            let entry = table
                .entry(k.clone())
                .or_insert_with(|| PendingE::new(self.n_inputs));
            // Provenance is only consumed by the tracer at launch; skip the
            // per-message Vec growth entirely when tracing is off.
            if ctx.trace.is_some() {
                entry.deps.push(dep);
            }
            let reducer = self.frozen.get().expect("node not attached").reducers[terminal].as_ref();
            let slot = entry.slots.get_mut(terminal);
            match slot {
                SlotE::Empty => match reducer {
                    Some(spec) => {
                        *slot = SlotE::Stream {
                            acc: Some((spec.init)(val)),
                            received: 1,
                            expected: spec.default_size,
                            finalized: false,
                        };
                    }
                    None => *slot = SlotE::Plain(val),
                },
                SlotE::Plain(_) => {
                    #[cfg(feature = "checked")]
                    {
                        ctx.sanitizer.record(Violation::ExactlyOnce {
                            node: self.name,
                            terminal,
                            key: format!("{k:?}"),
                        });
                        return;
                    }
                    #[cfg(not(feature = "checked"))]
                    panic!(
                        "duplicate input on terminal {} of {} for key {:?} (no reducer installed)",
                        terminal, self.name, k
                    );
                }
                SlotE::Stream {
                    acc,
                    received,
                    expected,
                    finalized,
                } => {
                    if *finalized || expected.is_some_and(|e| *received >= e) {
                        #[cfg(feature = "checked")]
                        {
                            ctx.sanitizer.record(Violation::StreamOverrun {
                                node: self.name,
                                terminal,
                                key: format!("{k:?}"),
                                received: *received,
                            });
                            return;
                        }
                        #[cfg(not(feature = "checked"))]
                        panic!(
                            "stream overrun on terminal {} of {} for key {:?}",
                            terminal, self.name, k
                        );
                    }
                    let spec = match reducer {
                        Some(spec) => spec,
                        None => {
                            // The terminal was turned into a stream by a
                            // `set_stream_size` without a reducer installed.
                            #[cfg(feature = "checked")]
                            {
                                ctx.sanitizer.record(Violation::StreamWithoutReducer {
                                    node: self.name,
                                    terminal,
                                    key: format!("{k:?}"),
                                });
                                return;
                            }
                            #[cfg(not(feature = "checked"))]
                            panic!(
                                "stream slot without reducer on terminal {} of {} for key {:?}",
                                terminal, self.name, k
                            );
                        }
                    };
                    match acc {
                        Some(a) => {
                            (spec.op)(a, val);
                            ctx.metrics.count_reducer_fold(rank);
                        }
                        None => *acc = Some((spec.init)(val)),
                    }
                    *received += 1;
                }
            }
            if entry.all_complete() {
                let entry = table.remove(&k).unwrap();
                Some(entry)
            } else {
                None
            }
        };
        if let Some(entry) = ready {
            self.launch(rank, k, entry, ctx);
        }
    }

    /// Set the expected stream length for `(k, terminal)`; may complete the
    /// task if the stream already received that many messages.
    pub fn set_stream_size(
        &self,
        rank: usize,
        terminal: usize,
        k: K,
        n: usize,
        ctx: &Arc<RuntimeCtx>,
    ) {
        let ready = {
            let mut table = self.table(rank, &k).lock();
            let entry = table
                .entry(k.clone())
                .or_insert_with(|| PendingE::new(self.n_inputs));
            let slot = entry.slots.get_mut(terminal);
            match slot {
                SlotE::Empty => {
                    *slot = SlotE::Stream {
                        acc: None,
                        received: 0,
                        expected: Some(n),
                        finalized: false,
                    };
                }
                SlotE::Stream {
                    received, expected, ..
                } => {
                    if *received > n {
                        #[cfg(feature = "checked")]
                        {
                            ctx.sanitizer.record(Violation::SizeBelowReceived {
                                node: self.name,
                                terminal,
                                key: format!("{k:?}"),
                                size: n,
                                received: *received,
                            });
                            return;
                        }
                        #[cfg(not(feature = "checked"))]
                        panic!(
                            "stream size {} below already-received {} on {} {:?}",
                            n, received, self.name, k
                        );
                    }
                    *expected = Some(n);
                }
                SlotE::Plain(_) => {
                    #[cfg(feature = "checked")]
                    {
                        ctx.sanitizer.record(Violation::SetSizeOnPlain {
                            node: self.name,
                            terminal,
                            key: format!("{k:?}"),
                        });
                        return;
                    }
                    #[cfg(not(feature = "checked"))]
                    panic!("set_stream_size on non-streaming terminal of {}", self.name);
                }
            }
            if entry.all_complete() {
                Some(table.remove(&k).unwrap())
            } else {
                None
            }
        };
        if let Some(entry) = ready {
            self.launch(rank, k, entry, ctx);
        }
    }

    /// Close an unbounded stream for `(k, terminal)` now.
    pub fn finalize_stream(&self, rank: usize, terminal: usize, k: K, ctx: &Arc<RuntimeCtx>) {
        let ready = {
            let mut table = self.table(rank, &k).lock();
            let entry = match table.get_mut(&k) {
                Some(e) => e,
                None => {
                    #[cfg(feature = "checked")]
                    {
                        ctx.sanitizer.record(Violation::FinalizeUnknownKey {
                            node: self.name,
                            terminal,
                            key: format!("{k:?}"),
                        });
                        return;
                    }
                    #[cfg(not(feature = "checked"))]
                    panic!(
                        "finalize on {} for unknown key {:?} (no messages received)",
                        self.name, k
                    );
                }
            };
            match entry.slots.get_mut(terminal) {
                SlotE::Stream { finalized, .. } => {
                    #[cfg(feature = "checked")]
                    if *finalized {
                        ctx.sanitizer.record(Violation::DoubleFinalize {
                            node: self.name,
                            terminal,
                            key: format!("{k:?}"),
                        });
                        return;
                    }
                    *finalized = true;
                }
                _ => {
                    #[cfg(feature = "checked")]
                    {
                        ctx.sanitizer.record(Violation::FinalizeNonStream {
                            node: self.name,
                            terminal,
                            key: format!("{k:?}"),
                        });
                        return;
                    }
                    #[cfg(not(feature = "checked"))]
                    panic!("finalize on non-streaming terminal of {}", self.name);
                }
            }
            if entry.all_complete() {
                Some(table.remove(&k).unwrap())
            } else {
                None
            }
        };
        if let Some(entry) = ready {
            self.launch(rank, k, entry, ctx);
        }
    }

    fn launch(&self, rank: usize, k: K, entry: PendingE, ctx: &Arc<RuntimeCtx>) {
        #[cfg(feature = "checked")]
        if entry
            .slots
            .as_slice()
            .iter()
            .any(|s| matches!(s, SlotE::Stream { acc: None, .. }))
        {
            ctx.sanitizer.record(Violation::EmptyStream {
                node: self.name,
                key: format!("{k:?}"),
            });
            return;
        }
        let invoke = Arc::clone(
            self.invoke
                .get()
                .unwrap_or_else(|| panic!("node {} has no task body", self.name)),
        );
        let vals: Vec<ErasedVal> = entry
            .slots
            .into_iter()
            .map(|s| match s {
                SlotE::Plain(v) => v,
                SlotE::Stream { acc: Some(a), .. } => ErasedVal::Owned(a),
                SlotE::Stream { acc: None, .. } => panic!(
                    "empty finalized stream on {} for key {:?}: no identity value",
                    self.name, k
                ),
                SlotE::Empty => unreachable!("incomplete slot at launch"),
            })
            .collect();
        let task_id = ctx.alloc_task_id();
        let frozen = self.frozen.get().expect("node not attached");
        let prio = if ctx.backend.honor_priorities {
            frozen.priomap.as_ref().map_or(0, |f| f(&k))
        } else {
            0
        };
        let deps = entry.deps;
        let costmap = frozen.costmap.clone();
        let ctx2 = Arc::clone(ctx);
        let node_id = self.id;
        let name = self.name;
        let executed = Arc::clone(&self.executed);
        ctx.metrics.count_activation(rank);
        let pool = ctx.pool(rank);
        let mut job = ttg_runtime::Job::with_priority(prio, move || {
            // Declared first so it drops last: successors spawned by this
            // body flush as one batch after the trace record, while this
            // job's quiescence unit is still held.
            let _batch = crate::batch::BatchScope::enter(&ctx2);
            let t0 = Instant::now();
            {
                #[cfg(feature = "telemetry")]
                let _span = ttg_telemetry::span_for_rank(rank, "task", name).arg("task", task_id);
                invoke(k.clone(), vals, task_id, rank, &ctx2);
            }
            let measured_ns = t0.elapsed().as_nanos() as u64;
            executed.fetch_add(1, Ordering::Relaxed);
            if let Some(tr) = &ctx2.trace {
                let cost_ns = costmap.as_ref().map_or(measured_ns, |f| f(&k));
                tr.record(TaskEvent {
                    id: task_id,
                    node: node_id,
                    name,
                    rank,
                    cost_ns,
                    priority: prio,
                    deps,
                });
            }
        });
        // Successors spawned by a worker inherit that worker's cache: bind
        // them to it so the pool's locality queue serves them hot.
        if let Some(w) = pool.current_worker() {
            job = job.with_locality(w);
        }
        crate::batch::enqueue(rank, job, ctx);
    }
}

impl<K: Key> AnyNode for NodeInner<K> {
    fn attach(&self, n_ranks: usize, workers_per_rank: usize) {
        let tables = (0..n_ranks)
            .map(|_| ShardedTable::new(2 * workers_per_rank))
            .collect();
        if self.tables.set(tables).is_err() {
            panic!("node {} attached twice", self.name);
        }
        let frozen = FrozenMaps {
            keymap: self.keymap.read().clone(),
            reducers: self.reducers.iter().map(|r| r.read().clone()).collect(),
            priomap: self.priomap.read().clone(),
            costmap: self.costmap.read().clone(),
        };
        if self.frozen.set(frozen).is_err() {
            panic!("node {} attached twice", self.name);
        }
    }

    fn deliver_am(
        &self,
        rank: usize,
        payload: &[u8],
        ctx: &Arc<RuntimeCtx>,
    ) -> Result<(), WireError> {
        let mut r = ReadBuf::new(payload);
        let from_task = r.get_u64()?;
        let msg_type = r.get_u8()?;
        let terminal = r.get_u16()? as usize;
        match msg_type {
            MSG_DATA_INLINE => {
                let src_rank = r.get_u64()? as usize;
                let nkeys = r.get_u32()? as usize;
                let mut keys = Vec::with_capacity(nkeys);
                for _ in 0..nkeys {
                    keys.push(K::decode(&mut r)?);
                }
                let bytes = r.remaining() as u64;
                let meta = self.meta(terminal);
                let first = (meta.decode)(&mut r)?;
                let msg = ctx.alloc_task_id();
                self.deliver_decoded(
                    rank, terminal, keys, first, from_task, src_rank, bytes, msg, ctx,
                );
            }
            MSG_DATA_SPLITMD => {
                let src_rank = r.get_u64()? as usize;
                let region = r.get_u64()?;
                let owner = r.get_u64()? as usize;
                let nkeys = r.get_u32()? as usize;
                let mut keys = Vec::with_capacity(nkeys);
                for _ in 0..nkeys {
                    keys.push(K::decode(&mut r)?);
                }
                let md_bytes = r.remaining() as u64;
                // Stage 2 of splitmd: one-sided fetch of the payload. A
                // missing region is a structured wire error (surfaced as a
                // CommError by the comm thread), not a process abort.
                let data = ctx
                    .fabric
                    .rma_get(rank, owner, region)
                    .map_err(|e| WireError::new(e.to_string()))?;
                let meta = self.meta(terminal);
                let first = (meta.decode_splitmd)(&mut r, &data)?;
                let bytes = md_bytes + data.len() as u64;
                let msg = ctx.alloc_task_id();
                self.deliver_decoded(
                    rank, terminal, keys, first, from_task, src_rank, bytes, msg, ctx,
                );
            }
            MSG_SET_SIZE => {
                let k = K::decode(&mut r)?;
                let n = r.get_u64()? as usize;
                self.set_stream_size(rank, terminal, k, n, ctx);
            }
            MSG_FINALIZE => {
                let k = K::decode(&mut r)?;
                self.finalize_stream(rank, terminal, k, ctx);
            }
            t => return Err(WireError::new(format!("unknown AM type {}", t))),
        }
        Ok(())
    }

    fn node_id(&self) -> u32 {
        self.id
    }

    fn node_name(&self) -> &'static str {
        self.name
    }

    fn tasks_executed(&self) -> u64 {
        self.executed.load(Ordering::Relaxed)
    }

    fn pending(&self) -> usize {
        match self.tables.get() {
            None => 0,
            Some(ts) => ts.iter().map(ShardedTable::pending).sum(),
        }
    }

    fn num_inputs(&self) -> usize {
        self.n_inputs
    }

    fn input_edges(&self) -> Vec<EdgeDecl> {
        self.topo.get().map(|(i, _)| i.clone()).unwrap_or_default()
    }

    fn output_edges(&self) -> Vec<EdgeDecl> {
        self.topo.get().map(|(_, o)| o.clone()).unwrap_or_default()
    }

    fn reducer_decls(&self) -> Vec<Option<ReducerDecl>> {
        match self.frozen.get() {
            Some(f) => f
                .reducers
                .iter()
                .map(|r| {
                    r.as_ref().map(|s| ReducerDecl {
                        default_size: s.default_size,
                    })
                })
                .collect(),
            None => self
                .reducers
                .iter()
                .map(|r| {
                    r.read().as_ref().map(|s| ReducerDecl {
                        default_size: s.default_size,
                    })
                })
                .collect(),
        }
    }

    fn probe_keymap(&self, n_ranks: usize) -> Option<KeymapProbe> {
        let samples = self.check_samples.read().clone();
        if samples.is_empty() {
            return None;
        }
        let km = match self.frozen.get() {
            Some(f) => Arc::clone(&f.keymap),
            None => Arc::clone(&self.keymap.read()),
        };
        let mut probe = KeymapProbe {
            samples: samples.len(),
            ..KeymapProbe::default()
        };
        for k in &samples {
            let r1 = km(k);
            let r2 = km(k);
            if r1 != r2 {
                probe.nondeterministic.push(format!("{k:?}"));
            }
            if r1 >= n_ranks {
                probe.out_of_range.push((format!("{k:?}"), r1));
            }
        }
        Some(probe)
    }

    fn pending_detail(&self) -> Vec<StuckEntry> {
        let Some(tables) = self.tables.get() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (rank, table) in tables.iter().enumerate() {
            for shard in &table.shards {
                let shard = shard.lock();
                for (k, e) in shard.iter() {
                    let mut missing = Vec::new();
                    let mut filled = Vec::new();
                    for (t, s) in e.slots.as_slice().iter().enumerate() {
                        if s.is_complete() {
                            filled.push(t);
                        } else {
                            missing.push((t, s.describe()));
                        }
                    }
                    out.push(StuckEntry {
                        node_id: self.id,
                        node: self.name,
                        rank,
                        key: format!("{k:?}"),
                        missing,
                        filled,
                    });
                }
            }
        }
        out
    }

    fn export_rank(&self, rank: usize, b: &mut WriteBuf) -> Result<(), WireError> {
        let table = &self.tables.get().expect("node not attached")[rank];
        // Entry count first; the comm thread only snapshots while the
        // rank's worker pool is idle, so the count cannot change between
        // the two passes.
        let total: usize = table.shards.iter().map(|s| s.lock().len()).sum();
        b.put_u64(total as u64);
        for shard in &table.shards {
            let shard = shard.lock();
            for (k, e) in shard.iter() {
                k.encode(b);
                b.put_u32(e.deps.len() as u32);
                for d in &e.deps {
                    b.put_u64(d.from_task);
                    b.put_u64(d.bytes);
                    b.put_u64(d.src_rank as u64);
                    b.put_u64(d.msg);
                }
                let slots = e.slots.as_slice();
                b.put_u16(slots.len() as u16);
                for (t, s) in slots.iter().enumerate() {
                    match s {
                        SlotE::Empty => b.put_u8(0),
                        SlotE::Plain(v) => {
                            b.put_u8(1);
                            (self.metas[t].encode)(v, b)?;
                        }
                        SlotE::Stream {
                            acc,
                            received,
                            expected,
                            finalized,
                        } => {
                            b.put_u8(2);
                            match acc {
                                Some(a) => {
                                    b.put_u8(1);
                                    (self.metas[t].encode_boxed)(a.as_ref(), b)?;
                                }
                                None => b.put_u8(0),
                            }
                            b.put_u64(*received as u64);
                            match expected {
                                Some(n) => {
                                    b.put_u8(1);
                                    b.put_u64(*n as u64);
                                }
                                None => b.put_u8(0),
                            }
                            b.put_u8(*finalized as u8);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn import_rank(&self, rank: usize, r: &mut ReadBuf<'_>) -> Result<(), WireError> {
        self.clear_rank(rank);
        let table = &self.tables.get().expect("node not attached")[rank];
        let total = r.get_u64()?;
        for _ in 0..total {
            let k = K::decode(r)?;
            let ndeps = r.get_u32()? as usize;
            let mut deps = Vec::with_capacity(ndeps);
            for _ in 0..ndeps {
                deps.push(Dep {
                    from_task: r.get_u64()?,
                    bytes: r.get_u64()?,
                    src_rank: r.get_u64()? as usize,
                    msg: r.get_u64()?,
                });
            }
            let nslots = r.get_u16()? as usize;
            if nslots > self.n_inputs {
                return Err(WireError::new(format!(
                    "snapshot names {} terminals but {} has {}",
                    nslots, self.name, self.n_inputs
                )));
            }
            let mut entry = PendingE::new(self.n_inputs);
            entry.deps = deps;
            for t in 0..nslots {
                let slot = entry.slots.get_mut(t);
                match r.get_u8()? {
                    0 => {}
                    1 => *slot = SlotE::Plain(ErasedVal::Owned((self.metas[t].decode)(r)?)),
                    2 => {
                        let acc = if r.get_u8()? == 1 {
                            Some((self.metas[t].decode)(r)?)
                        } else {
                            None
                        };
                        let received = r.get_u64()? as usize;
                        let expected = if r.get_u8()? == 1 {
                            Some(r.get_u64()? as usize)
                        } else {
                            None
                        };
                        let finalized = r.get_u8()? == 1;
                        *slot = SlotE::Stream {
                            acc,
                            received,
                            expected,
                            finalized,
                        };
                    }
                    t => return Err(WireError::new(format!("bad slot tag {t} in snapshot"))),
                }
            }
            table.shard(&k).lock().insert(k, entry);
        }
        Ok(())
    }

    fn clear_rank(&self, rank: usize) {
        if let Some(tables) = self.tables.get() {
            for shard in &tables[rank].shards {
                shard.lock().clear();
            }
        }
    }
}

impl<K: Key> NodeInner<K> {
    #[allow(clippy::too_many_arguments)]
    fn deliver_decoded(
        &self,
        rank: usize,
        terminal: usize,
        keys: Vec<K>,
        first: Box<dyn Any + Send>,
        from_task: u64,
        src_rank: usize,
        bytes: u64,
        msg: u64,
        ctx: &Arc<RuntimeCtx>,
    ) {
        let meta = self.meta(terminal);
        let n = keys.len();
        // Every key records the full wire size, tagged with the shared
        // transfer id: the projection simulates the AM once and lets
        // all piggybacked consumers wait for the same arrival.
        let dep = Dep {
            from_task,
            bytes,
            src_rank,
            msg,
        };
        if n > 1 && ctx.backend.local_pass == LocalPass::Share {
            // Share local-pass: the piggybacked consumers of one AM alias a
            // single decoded allocation instead of each getting a deep copy.
            let arc = (meta.to_shared)(first);
            ctx.metrics.count_value_shared(rank);
            for k in keys {
                ctx.metrics.count_local_shared(rank);
                self.insert(
                    rank,
                    terminal,
                    k,
                    ErasedVal::Shared(Arc::clone(&arc)),
                    dep,
                    ctx,
                );
            }
            return;
        }
        let mut first = Some(first);
        for (i, k) in keys.into_iter().enumerate() {
            let val = if i + 1 == n {
                first.take().unwrap()
            } else {
                (meta.clone_boxed)(first.as_deref().unwrap())
            };
            self.insert(rank, terminal, k, ErasedVal::Owned(val), dep, ctx);
        }
    }
}

/// Helper: encode the common AM header.
pub fn am_header(b: &mut WriteBuf, from_task: u64, msg_type: u8, terminal: u16) {
    b.put_u64(from_task);
    b.put_u8(msg_type);
    b.put_u16(terminal);
}
