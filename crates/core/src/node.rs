//! Type-erased template-task internals.
//!
//! A template task ("TT") matches incoming messages by task ID across all of
//! its input terminals; when every terminal has a complete input for some ID
//! a task instance is created and scheduled (paper §II). The public, fully
//! typed API lives in `graph`/`outs`; this module implements the matching
//! tables, streaming-terminal reduction, task launch, and the wire format of
//! active messages.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::{Mutex, RwLock};
use ttg_comm::{ReadBuf, WireError, WriteBuf};

use crate::ctx::RuntimeCtx;
use crate::trace::{Dep, TaskEvent};
use crate::types::{ErasedVal, Key};

/// AM message type: inline (archive/trivial) data.
pub const MSG_DATA_INLINE: u8 = 0;
/// AM message type: split-metadata data (payload via RMA).
pub const MSG_DATA_SPLITMD: u8 = 1;
/// AM message type: set the expected stream size for a key.
pub const MSG_SET_SIZE: u8 = 2;
/// AM message type: finalize an unbounded stream for a key.
pub const MSG_FINALIZE: u8 = 3;

/// Type-erased reduction operator for a streaming terminal.
pub type ErasedReduce = Arc<dyn Fn(&mut Box<dyn Any + Send>, ErasedVal) + Send + Sync>;

/// Type-erased conversion of the first stream message into the accumulator.
pub type ErasedInit = Arc<dyn Fn(ErasedVal) -> Box<dyn Any + Send> + Send + Sync>;

/// Reducer installed on an input terminal (paper §II-B streaming terminals).
#[derive(Clone)]
pub struct ReducerSpec {
    /// Converts the first message into the accumulator.
    pub init: ErasedInit,
    /// Folds one more message into the accumulator.
    pub op: ErasedReduce,
    /// Default expected stream length (None = unbounded, requires
    /// finalize or a per-key size).
    pub default_size: Option<usize>,
}

/// Fixed (construction-time) per-terminal vtable.
pub struct InputMeta {
    /// Decode an inline value from an AM.
    pub decode:
        Arc<dyn Fn(&mut ReadBuf<'_>) -> Result<Box<dyn Any + Send>, WireError> + Send + Sync>,
    /// Decode a split-metadata value: metadata cursor + RMA payload bytes.
    pub decode_splitmd: Arc<
        dyn Fn(&mut ReadBuf<'_>, &[u8]) -> Result<Box<dyn Any + Send>, WireError> + Send + Sync,
    >,
    /// Clone an erased boxed value (for multi-key deliveries).
    pub clone_boxed: Arc<dyn Fn(&(dyn Any + Send)) -> Box<dyn Any + Send> + Send + Sync>,
}

/// State of one input terminal for one pending task ID.
pub enum SlotE {
    /// No message yet.
    Empty,
    /// Single-message terminal, satisfied.
    Plain(ErasedVal),
    /// Streaming terminal accumulating messages.
    Stream {
        /// Reduction accumulator (None until the first message).
        acc: Option<Box<dyn Any + Send>>,
        /// Messages folded so far.
        received: usize,
        /// Expected stream length (terminal default or per-key override).
        expected: Option<usize>,
        /// Explicitly finalized via `finalize`.
        finalized: bool,
    },
}

impl SlotE {
    fn is_complete(&self) -> bool {
        match self {
            SlotE::Empty => false,
            SlotE::Plain(_) => true,
            SlotE::Stream {
                received,
                expected,
                finalized,
                ..
            } => *finalized || expected.is_some_and(|e| *received >= e),
        }
    }
}

/// Matching-table entry: all terminal states plus trace provenance.
pub struct PendingE {
    slots: Vec<SlotE>,
    deps: Vec<Dep>,
}

impl PendingE {
    fn new(n: usize) -> Self {
        PendingE {
            slots: (0..n).map(|_| SlotE::Empty).collect(),
            deps: Vec::new(),
        }
    }
    fn all_complete(&self) -> bool {
        self.slots.iter().all(|s| s.is_complete())
    }
}

/// Type-erased interface of a template task, used by the executor's
/// communication threads and diagnostics.
pub trait AnyNode: Send + Sync {
    /// Size the per-rank matching tables (called once by the executor).
    fn attach(&self, n_ranks: usize);
    /// Deliver a serialized active message addressed to this node.
    fn deliver_am(
        &self,
        rank: usize,
        payload: &[u8],
        ctx: &Arc<RuntimeCtx>,
    ) -> Result<(), WireError>;
    /// Node id within its graph.
    fn node_id(&self) -> u32;
    /// Node name.
    fn node_name(&self) -> &'static str;
    /// Tasks executed so far.
    fn tasks_executed(&self) -> u64;
    /// Pending (incomplete) task IDs across all ranks.
    fn pending(&self) -> usize;
}

type InvokeFn<K> = Arc<dyn Fn(K, Vec<ErasedVal>, u64, usize, &Arc<RuntimeCtx>) + Send + Sync>;
type KeyMapFn<K> = Arc<dyn Fn(&K) -> usize + Send + Sync>;
type PrioMapFn<K> = Arc<dyn Fn(&K) -> i32 + Send + Sync>;
type CostMapFn<K> = Arc<dyn Fn(&K) -> u64 + Send + Sync>;

/// The shared implementation behind every template task.
pub struct NodeInner<K: Key> {
    /// Node id within the graph.
    pub id: u32,
    /// Node name (for traces and debugging).
    pub name: &'static str,
    /// Number of input terminals.
    pub n_inputs: usize,
    tables: OnceLock<Vec<Mutex<HashMap<K, PendingE>>>>,
    keymap: RwLock<KeyMapFn<K>>,
    priomap: RwLock<Option<PrioMapFn<K>>>,
    costmap: RwLock<Option<CostMapFn<K>>>,
    metas: Vec<InputMeta>,
    reducers: Vec<RwLock<Option<ReducerSpec>>>,
    invoke: OnceLock<InvokeFn<K>>,
    executed: Arc<AtomicU64>,
}

impl<K: Key> NodeInner<K> {
    /// Construct a node; `metas` has one entry per input terminal.
    pub fn new(id: u32, name: &'static str, metas: Vec<InputMeta>, keymap: KeyMapFn<K>) -> Self {
        let n_inputs = metas.len();
        NodeInner {
            id,
            name,
            n_inputs,
            tables: OnceLock::new(),
            keymap: RwLock::new(keymap),
            priomap: RwLock::new(None),
            costmap: RwLock::new(None),
            metas,
            reducers: (0..n_inputs).map(|_| RwLock::new(None)).collect(),
            invoke: OnceLock::new(),
            executed: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Install the task body (done once by `make_tt`).
    pub fn set_invoke(&self, f: InvokeFn<K>) {
        if self.invoke.set(f).is_err() {
            panic!("invoke already set for node {}", self.name);
        }
    }

    /// Install a streaming reducer on terminal `t`.
    pub fn set_reducer(&self, t: usize, spec: ReducerSpec) {
        *self.reducers[t].write() = Some(spec);
    }

    /// Replace the keymap.
    pub fn set_keymap(&self, f: KeyMapFn<K>) {
        *self.keymap.write() = f;
    }

    /// Install a priority map.
    pub fn set_priomap(&self, f: PrioMapFn<K>) {
        *self.priomap.write() = Some(f);
    }

    /// Install a cost model for trace-based projection.
    pub fn set_costmap(&self, f: CostMapFn<K>) {
        *self.costmap.write() = Some(f);
    }

    /// Rank owning task `k` (bounded by the fabric size).
    pub fn owner(&self, k: &K, n_ranks: usize) -> usize {
        (self.keymap.read())(k) % n_ranks
    }

    /// Per-terminal vtable.
    pub fn meta(&self, t: usize) -> &InputMeta {
        &self.metas[t]
    }

    fn table(&self, rank: usize) -> &Mutex<HashMap<K, PendingE>> {
        &self.tables.get().expect("node not attached")[rank]
    }

    /// Insert a value for `(k, terminal)` into rank `rank`'s table,
    /// launching the task if this completes all inputs.
    pub fn insert(
        &self,
        rank: usize,
        terminal: usize,
        k: K,
        val: ErasedVal,
        dep: Dep,
        ctx: &Arc<RuntimeCtx>,
    ) {
        debug_assert_eq!(self.owner(&k, ctx.n_ranks()), rank, "misrouted message");
        let ready = {
            let mut table = self.table(rank).lock();
            let entry = table
                .entry(k.clone())
                .or_insert_with(|| PendingE::new(self.n_inputs));
            entry.deps.push(dep);
            let reducer = self.reducers[terminal].read().clone();
            let slot = &mut entry.slots[terminal];
            match slot {
                SlotE::Empty => match &reducer {
                    Some(spec) => {
                        *slot = SlotE::Stream {
                            acc: Some((spec.init)(val)),
                            received: 1,
                            expected: spec.default_size,
                            finalized: false,
                        };
                    }
                    None => *slot = SlotE::Plain(val),
                },
                SlotE::Plain(_) => panic!(
                    "duplicate input on terminal {} of {} for key {:?} (no reducer installed)",
                    terminal, self.name, k
                ),
                SlotE::Stream {
                    acc,
                    received,
                    expected,
                    finalized,
                } => {
                    assert!(
                        !*finalized && expected.is_none_or(|e| *received < e),
                        "stream overrun on terminal {} of {} for key {:?}",
                        terminal,
                        self.name,
                        k
                    );
                    let spec = reducer.expect("stream slot without reducer");
                    match acc {
                        Some(a) => {
                            (spec.op)(a, val);
                            ctx.metrics.count_reducer_fold(rank);
                        }
                        None => *acc = Some((spec.init)(val)),
                    }
                    *received += 1;
                }
            }
            if entry.all_complete() {
                let entry = table.remove(&k).unwrap();
                Some(entry)
            } else {
                None
            }
        };
        if let Some(entry) = ready {
            self.launch(rank, k, entry, ctx);
        }
    }

    /// Set the expected stream length for `(k, terminal)`; may complete the
    /// task if the stream already received that many messages.
    pub fn set_stream_size(
        &self,
        rank: usize,
        terminal: usize,
        k: K,
        n: usize,
        ctx: &Arc<RuntimeCtx>,
    ) {
        let ready = {
            let mut table = self.table(rank).lock();
            let entry = table
                .entry(k.clone())
                .or_insert_with(|| PendingE::new(self.n_inputs));
            let slot = &mut entry.slots[terminal];
            match slot {
                SlotE::Empty => {
                    *slot = SlotE::Stream {
                        acc: None,
                        received: 0,
                        expected: Some(n),
                        finalized: false,
                    };
                }
                SlotE::Stream {
                    received, expected, ..
                } => {
                    assert!(
                        *received <= n,
                        "stream size {} below already-received {} on {} {:?}",
                        n,
                        received,
                        self.name,
                        k
                    );
                    *expected = Some(n);
                }
                SlotE::Plain(_) => {
                    panic!("set_stream_size on non-streaming terminal of {}", self.name)
                }
            }
            if entry.all_complete() {
                Some(table.remove(&k).unwrap())
            } else {
                None
            }
        };
        if let Some(entry) = ready {
            self.launch(rank, k, entry, ctx);
        }
    }

    /// Close an unbounded stream for `(k, terminal)` now.
    pub fn finalize_stream(&self, rank: usize, terminal: usize, k: K, ctx: &Arc<RuntimeCtx>) {
        let ready = {
            let mut table = self.table(rank).lock();
            let entry = match table.get_mut(&k) {
                Some(e) => e,
                None => panic!(
                    "finalize on {} for unknown key {:?} (no messages received)",
                    self.name, k
                ),
            };
            match &mut entry.slots[terminal] {
                SlotE::Stream { finalized, .. } => *finalized = true,
                _ => panic!("finalize on non-streaming terminal of {}", self.name),
            }
            if entry.all_complete() {
                Some(table.remove(&k).unwrap())
            } else {
                None
            }
        };
        if let Some(entry) = ready {
            self.launch(rank, k, entry, ctx);
        }
    }

    fn launch(&self, rank: usize, k: K, entry: PendingE, ctx: &Arc<RuntimeCtx>) {
        let invoke = Arc::clone(
            self.invoke
                .get()
                .unwrap_or_else(|| panic!("node {} has no task body", self.name)),
        );
        let vals: Vec<ErasedVal> = entry
            .slots
            .into_iter()
            .map(|s| match s {
                SlotE::Plain(v) => v,
                SlotE::Stream { acc: Some(a), .. } => ErasedVal::Owned(a),
                SlotE::Stream { acc: None, .. } => panic!(
                    "empty finalized stream on {} for key {:?}: no identity value",
                    self.name, k
                ),
                SlotE::Empty => unreachable!("incomplete slot at launch"),
            })
            .collect();
        let task_id = ctx.alloc_task_id();
        let prio = if ctx.backend.honor_priorities {
            self.priomap.read().as_ref().map_or(0, |f| f(&k))
        } else {
            0
        };
        let deps = entry.deps;
        let costmap = self.costmap.read().clone();
        let ctx2 = Arc::clone(ctx);
        let node_id = self.id;
        let name = self.name;
        let executed = Arc::clone(&self.executed);
        ctx.metrics.count_activation(rank);
        ctx.pool(rank)
            .submit(ttg_runtime::Job::with_priority(prio, move || {
                let t0 = Instant::now();
                {
                    #[cfg(feature = "telemetry")]
                    let _span =
                        ttg_telemetry::span_for_rank(rank, "task", name).arg("task", task_id);
                    invoke(k.clone(), vals, task_id, rank, &ctx2);
                }
                let measured_ns = t0.elapsed().as_nanos() as u64;
                executed.fetch_add(1, Ordering::Relaxed);
                if let Some(tr) = &ctx2.trace {
                    let cost_ns = costmap.as_ref().map_or(measured_ns, |f| f(&k));
                    tr.record(TaskEvent {
                        id: task_id,
                        node: node_id,
                        name,
                        rank,
                        cost_ns,
                        priority: prio,
                        deps,
                    });
                }
            }));
    }
}

impl<K: Key> AnyNode for NodeInner<K> {
    fn attach(&self, n_ranks: usize) {
        let tables = (0..n_ranks).map(|_| Mutex::new(HashMap::new())).collect();
        if self.tables.set(tables).is_err() {
            panic!("node {} attached twice", self.name);
        }
    }

    fn deliver_am(
        &self,
        rank: usize,
        payload: &[u8],
        ctx: &Arc<RuntimeCtx>,
    ) -> Result<(), WireError> {
        let mut r = ReadBuf::new(payload);
        let from_task = r.get_u64()?;
        let msg_type = r.get_u8()?;
        let terminal = r.get_u16()? as usize;
        match msg_type {
            MSG_DATA_INLINE => {
                let src_rank = r.get_u64()? as usize;
                let nkeys = r.get_u32()? as usize;
                let mut keys = Vec::with_capacity(nkeys);
                for _ in 0..nkeys {
                    keys.push(K::decode(&mut r)?);
                }
                let bytes = r.remaining() as u64;
                let meta = self.meta(terminal);
                let first = (meta.decode)(&mut r)?;
                let msg = ctx.alloc_task_id();
                self.deliver_decoded(
                    rank, terminal, keys, first, from_task, src_rank, bytes, msg, ctx,
                );
            }
            MSG_DATA_SPLITMD => {
                let src_rank = r.get_u64()? as usize;
                let region = r.get_u64()?;
                let owner = r.get_u64()? as usize;
                let nkeys = r.get_u32()? as usize;
                let mut keys = Vec::with_capacity(nkeys);
                for _ in 0..nkeys {
                    keys.push(K::decode(&mut r)?);
                }
                let md_bytes = r.remaining() as u64;
                // Stage 2 of splitmd: one-sided fetch of the payload.
                let data = ctx.fabric.rma_get(rank, owner, region);
                let meta = self.meta(terminal);
                let first = (meta.decode_splitmd)(&mut r, &data)?;
                let bytes = md_bytes + data.len() as u64;
                let msg = ctx.alloc_task_id();
                self.deliver_decoded(
                    rank, terminal, keys, first, from_task, src_rank, bytes, msg, ctx,
                );
            }
            MSG_SET_SIZE => {
                let k = K::decode(&mut r)?;
                let n = r.get_u64()? as usize;
                self.set_stream_size(rank, terminal, k, n, ctx);
            }
            MSG_FINALIZE => {
                let k = K::decode(&mut r)?;
                self.finalize_stream(rank, terminal, k, ctx);
            }
            t => return Err(WireError::new(format!("unknown AM type {}", t))),
        }
        Ok(())
    }

    fn node_id(&self) -> u32 {
        self.id
    }

    fn node_name(&self) -> &'static str {
        self.name
    }

    fn tasks_executed(&self) -> u64 {
        self.executed.load(Ordering::Relaxed)
    }

    fn pending(&self) -> usize {
        match self.tables.get() {
            None => 0,
            Some(ts) => ts.iter().map(|t| t.lock().len()).sum(),
        }
    }
}

impl<K: Key> NodeInner<K> {
    #[allow(clippy::too_many_arguments)]
    fn deliver_decoded(
        &self,
        rank: usize,
        terminal: usize,
        keys: Vec<K>,
        first: Box<dyn Any + Send>,
        from_task: u64,
        src_rank: usize,
        bytes: u64,
        msg: u64,
        ctx: &Arc<RuntimeCtx>,
    ) {
        let meta = self.meta(terminal);
        let n = keys.len();
        let mut first = Some(first);
        for (i, k) in keys.into_iter().enumerate() {
            let val = if i + 1 == n {
                first.take().unwrap()
            } else {
                (meta.clone_boxed)(first.as_deref().unwrap())
            };
            // Every key records the full wire size, tagged with the shared
            // transfer id: the projection simulates the AM once and lets
            // all piggybacked consumers wait for the same arrival.
            let dep = Dep {
                from_task,
                bytes,
                src_rank,
                msg,
            };
            self.insert(rank, terminal, k, ErasedVal::Owned(val), dep, ctx);
        }
    }
}

/// Helper: encode the common AM header.
pub fn am_header(b: &mut WriteBuf, from_task: u64, msg_type: u8, terminal: u16) {
    b.put_u64(from_task);
    b.put_u8(msg_type);
    b.put_u16(terminal);
}
