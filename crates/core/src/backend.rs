//! Backend specification: the knobs that distinguish the paper's two TTG
//! backends (PaRSEC, MADNESS).
//!
//! TTG is "a higher-level abstraction for a low-level task runtime"
//! (paper §II-D); the concrete backend crates (`ttg-parsec`,
//! `ttg-madness`) construct [`BackendSpec`] values that configure the shared
//! execution machinery in this crate and add their own runtime facilities
//! (PTG interface, futures/global namespaces).

use crate::types::LocalPass;
use ttg_runtime::SchedulerKind;

/// Configuration surface of a TTG backend.
#[derive(Debug, Clone)]
pub struct BackendSpec {
    /// Backend name for reports ("parsec", "madness", ...).
    pub name: &'static str,
    /// Scheduling discipline of the per-rank worker pools.
    pub scheduler: SchedulerKind,
    /// Rank-local data passing semantics.
    pub local_pass: LocalPass,
    /// Whether the split-metadata RMA protocol may be used (paper: PaRSEC
    /// backend only).
    pub supports_splitmd: bool,
    /// Serialize broadcast payloads once per destination *process* rather
    /// than once per destination *task* (paper §II-A optimization).
    pub optimized_broadcast: bool,
    /// Whether task priorities from priority maps reach the scheduler.
    pub honor_priorities: bool,
    /// Per-message software overhead in nanoseconds charged by the
    /// discrete-event projection (captures AM-handling cost differences).
    pub msg_overhead_ns: u64,
    /// Per-task activation overhead in nanoseconds for the discrete-event
    /// projection.
    pub task_overhead_ns: u64,
}

impl BackendSpec {
    /// A neutral default backend (used by unit tests): work stealing,
    /// shared local data, all features on.
    pub fn default_spec() -> Self {
        BackendSpec {
            name: "default",
            scheduler: SchedulerKind::WorkStealing,
            local_pass: LocalPass::Share,
            supports_splitmd: true,
            optimized_broadcast: true,
            honor_priorities: true,
            msg_overhead_ns: 800,
            task_overhead_ns: 300,
        }
    }
}

impl Default for BackendSpec {
    fn default() -> Self {
        Self::default_spec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_enables_all_features() {
        let s = BackendSpec::default();
        assert!(s.supports_splitmd);
        assert!(s.optimized_broadcast);
        assert!(s.honor_priorities);
        assert_eq!(s.scheduler, SchedulerKind::WorkStealing);
        assert_eq!(s.local_pass, LocalPass::Share);
    }
}
