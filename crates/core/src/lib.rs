//! # ttg-core — the Template Task Graph programming model in Rust
//!
//! A Rust implementation of TTG as described in *"Generalized Flow-Graph
//! Programming Using Template Task-Graphs: Initial Implementation and
//! Assessment"* (IPDPS 2022). An algorithm is expressed as a graph of
//! **template tasks** connected by strongly typed **edges**; each message
//! carries a **task ID** (control) and **data**. A task instance is created
//! once all input terminals of a template have received a message with the
//! same task ID. The DAG of task instances is discovered dynamically and
//! distributedly — no process ever holds the whole DAG.
//!
//! ```
//! use ttg_core::prelude::*;
//!
//! // A two-stage pipeline: double a number, then print-collect it.
//! let nums: Edge<u64, i64> = Edge::new("nums");
//! let doubled: Edge<u64, i64> = Edge::new("doubled");
//!
//! let mut g = GraphBuilder::new();
//! let doubler = g.make_tt(
//!     "double",
//!     (nums.clone(),),
//!     (doubled.clone(),),
//!     |k: &u64| *k as usize, // keymap: task k runs on rank k % n
//!     |k, (x,): (i64,), outs| outs.send::<0>(*k, x * 2),
//! );
//! let sink = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
//! let sink2 = sink.clone();
//! let _collect = g.make_tt(
//!     "collect",
//!     (doubled,),
//!     (),
//!     |_k: &u64| 0usize,
//!     move |k, (x,): (i64,), _outs| sink2.lock().unwrap().push((*k, x)),
//! );
//!
//! let exec = Executor::new(g.build(), ExecConfig::distributed(2, 2, BackendSpec::default()));
//! for k in 0..4u64 {
//!     doubler.in_ref::<0>().seed(exec.ctx(), k, k as i64 + 10);
//! }
//! let report = exec.finish();
//! assert_eq!(report.tasks, 8);
//! let mut out = sink.lock().unwrap().clone();
//! out.sort();
//! assert_eq!(out, vec![(0, 20), (1, 22), (2, 24), (3, 26)]);
//! ```

#![warn(missing_docs)]

pub mod backend;
pub(crate) mod batch;
pub mod ctx;
pub mod edge;
pub mod executor;
pub mod export;
pub mod graph;
pub mod inspect;
pub mod lockdoc;
pub mod node;
pub mod outs;
pub mod trace;
pub mod tuples;
pub mod types;

pub use backend::BackendSpec;
pub use ctx::RuntimeCtx;
pub use edge::{ConsumerPort, Edge, OutTerm};
pub use executor::{ExecConfig, ExecReport, Executor};
pub use export::{chrome_trace, layout_task_slices};
pub use graph::{Graph, GraphBuilder, TtHandle};
pub use inspect::{EdgeDecl, KeymapProbe, MutationError, ReducerDecl, StuckEntry, Violation};
pub use outs::{InRef, Outs};
pub use trace::{Dep, TaskEvent, TraceRecorder};
pub use ttg_comm::{
    CommError, CommErrorKind, FaultPlan, KillScript, RemoteHandle, RetryPolicy, TransportKind,
    TransportSpec,
};
pub use types::{Ctl, Data, Key, LocalPass};

/// Everything needed to write a TTG program.
pub mod prelude {
    pub use crate::backend::BackendSpec;
    pub use crate::edge::Edge;
    pub use crate::executor::{ExecConfig, ExecReport, Executor};
    pub use crate::graph::{Graph, GraphBuilder, TtHandle};
    pub use crate::outs::{InRef, Outs};
    pub use crate::types::{Ctl, LocalPass};
    pub use ttg_comm::{FaultPlan, RemoteHandle, TransportKind, TransportSpec, Wire, WireKind};
}
