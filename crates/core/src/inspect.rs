//! Graph introspection and runtime-sanitizer vocabulary.
//!
//! The static verifier in `ttg-check` walks a built [`Graph`](crate::Graph)
//! through the type-erased [`AnyNode`](crate::node::AnyNode) interface; the
//! types here are what that interface speaks: edge/terminal topology
//! declarations recorded at `make_tt` time, sampled keymap probes, the
//! stuck-key entries collected from the matching tables at termination, and
//! the structured violations the `checked` runtime sanitizer records instead
//! of panicking.

use std::fmt;

use parking_lot::Mutex;

/// Identity of one edge as recorded on a node's input/output terminal lists.
///
/// Edge ids are process-globally unique (allocated by [`crate::Edge::new`]),
/// so two terminals naming the same id are connected through the same edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeDecl {
    /// Process-unique edge id.
    pub edge_id: u64,
    /// Edge name given at construction (diagnostics only, not unique).
    pub name: String,
}

/// Declared reducer configuration of one input terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReducerDecl {
    /// Expected stream length for every key (`None` = unbounded, must be
    /// closed per key with `set_size`/`finalize`).
    pub default_size: Option<usize>,
}

/// Outcome of evaluating a node's keymap over registered sample keys.
#[derive(Debug, Clone, Default)]
pub struct KeymapProbe {
    /// Number of sample keys evaluated.
    pub samples: usize,
    /// Keys (debug-rendered) whose raw keymap value was `>= n_ranks`,
    /// with the value returned.
    pub out_of_range: Vec<(String, usize)>,
    /// Keys for which two evaluations returned different ranks.
    pub nondeterministic: Vec<String>,
}

/// A partially matched task ID left in a matching table at termination:
/// the anatomy of a silent hang.
#[derive(Debug, Clone)]
pub struct StuckEntry {
    /// Id of the owning template task.
    pub node_id: u32,
    /// Name of the owning template task.
    pub node: &'static str,
    /// Rank whose table holds the entry.
    pub rank: usize,
    /// The stuck task ID, debug-rendered.
    pub key: String,
    /// Incomplete terminals: `(terminal index, state description)`.
    pub missing: Vec<(usize, String)>,
    /// Terminals that did receive a complete input.
    pub filled: Vec<usize>,
}

impl fmt::Display for StuckEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "node '{}' key {} on rank {}: ",
            self.node, self.key, self.rank
        )?;
        let parts: Vec<String> = self
            .missing
            .iter()
            .map(|(t, state)| format!("terminal {t} {state}"))
            .collect();
        write!(f, "waiting on {}", parts.join(", "))?;
        if !self.filled.is_empty() {
            let filled: Vec<String> = self.filled.iter().map(usize::to_string).collect();
            write!(f, " (terminals {} already matched)", filled.join(", "))?;
        }
        Ok(())
    }
}

/// Error returned when a node map is mutated after the executor froze it
/// (diagnostic code `TTG010`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutationError {
    /// Template task the mutation targeted.
    pub node: &'static str,
    /// The mutating operation (`"set_keymap"`, …).
    pub what: &'static str,
}

impl fmt::Display for MutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TTG010: {} on template task '{}' after executor attach — \
             node maps are frozen when the graph is attached",
            self.what, self.node
        )
    }
}

impl std::error::Error for MutationError {}

/// A matching-path misuse observed by the runtime sanitizer (`checked`
/// feature). Without the feature each of these is a panic deep in the hot
/// path (or a silent data loss); with it, the message is dropped and the
/// violation is reported structurally through
/// [`ExecReport::violations`](crate::ExecReport).
#[derive(Debug, Clone)]
pub enum Violation {
    /// Second message for a key on a terminal with no reducer (`TTG020`).
    ExactlyOnce {
        /// Template task name.
        node: &'static str,
        /// Input terminal index.
        terminal: usize,
        /// Offending task ID, debug-rendered.
        key: String,
    },
    /// Message past the declared stream size, or after finalize (`TTG021`).
    StreamOverrun {
        /// Template task name.
        node: &'static str,
        /// Input terminal index.
        terminal: usize,
        /// Offending task ID, debug-rendered.
        key: String,
        /// Messages already folded.
        received: usize,
    },
    /// `set_stream_size` on a terminal already holding a plain (non-stream)
    /// input (`TTG022`).
    SetSizeOnPlain {
        /// Template task name.
        node: &'static str,
        /// Input terminal index.
        terminal: usize,
        /// Offending task ID, debug-rendered.
        key: String,
    },
    /// Declared stream size below the already-received count (`TTG022`).
    SizeBelowReceived {
        /// Template task name.
        node: &'static str,
        /// Input terminal index.
        terminal: usize,
        /// Offending task ID, debug-rendered.
        key: String,
        /// The declared size.
        size: usize,
        /// Messages already folded.
        received: usize,
    },
    /// `finalize` on an already-finalized stream (`TTG023`).
    DoubleFinalize {
        /// Template task name.
        node: &'static str,
        /// Input terminal index.
        terminal: usize,
        /// Offending task ID, debug-rendered.
        key: String,
    },
    /// `finalize` for a key with no pending entry (`TTG023`).
    FinalizeUnknownKey {
        /// Template task name.
        node: &'static str,
        /// Input terminal index.
        terminal: usize,
        /// Offending task ID, debug-rendered.
        key: String,
    },
    /// `finalize` on a non-streaming terminal (`TTG023`).
    FinalizeNonStream {
        /// Template task name.
        node: &'static str,
        /// Input terminal index.
        terminal: usize,
        /// Offending task ID, debug-rendered.
        key: String,
    },
    /// A stream completed with zero messages: no identity value to launch
    /// the task with (`TTG024`).
    EmptyStream {
        /// Template task name.
        node: &'static str,
        /// Offending task ID, debug-rendered.
        key: String,
    },
    /// A data message arrived on a terminal turned into a stream (via
    /// `set_stream_size`) that has no reducer installed (`TTG026`).
    StreamWithoutReducer {
        /// Template task name.
        node: &'static str,
        /// Input terminal index.
        terminal: usize,
        /// Offending task ID, debug-rendered.
        key: String,
    },
    /// Sends on an edge with zero consumer terminals were dropped
    /// (`TTG031`). Always counted in the `core/dropped_sends` metric; the
    /// structured record is only kept under `checked`.
    DroppedSend {
        /// Edge name.
        edge: String,
        /// Number of destination keys whose value was dropped.
        keys: usize,
    },
}

impl Violation {
    /// Diagnostic code of this violation (see DESIGN §6 for the table).
    pub fn code(&self) -> &'static str {
        match self {
            Violation::ExactlyOnce { .. } => "TTG020",
            Violation::StreamOverrun { .. } => "TTG021",
            Violation::SetSizeOnPlain { .. } | Violation::SizeBelowReceived { .. } => "TTG022",
            Violation::DoubleFinalize { .. }
            | Violation::FinalizeUnknownKey { .. }
            | Violation::FinalizeNonStream { .. } => "TTG023",
            Violation::EmptyStream { .. } => "TTG024",
            Violation::StreamWithoutReducer { .. } => "TTG026",
            Violation::DroppedSend { .. } => "TTG031",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ", self.code())?;
        match self {
            Violation::ExactlyOnce {
                node,
                terminal,
                key,
            } => write!(
                f,
                "exactly-once violation: duplicate input on terminal {terminal} of '{node}' \
                 for key {key} (no reducer installed); message dropped"
            ),
            Violation::StreamOverrun {
                node,
                terminal,
                key,
                received,
            } => write!(
                f,
                "send after stream close: terminal {terminal} of '{node}' for key {key} \
                 already received {received} message(s); message dropped"
            ),
            Violation::SetSizeOnPlain {
                node,
                terminal,
                key,
            } => write!(
                f,
                "set_stream_size on non-streaming terminal {terminal} of '{node}' for key {key}"
            ),
            Violation::SizeBelowReceived {
                node,
                terminal,
                key,
                size,
                received,
            } => write!(
                f,
                "stream size {size} below already-received {received} on terminal {terminal} \
                 of '{node}' for key {key}"
            ),
            Violation::DoubleFinalize {
                node,
                terminal,
                key,
            } => write!(
                f,
                "stream finalized twice on terminal {terminal} of '{node}' for key {key}"
            ),
            Violation::FinalizeUnknownKey {
                node,
                terminal,
                key,
            } => write!(
                f,
                "finalize on terminal {terminal} of '{node}' for unknown key {key} \
                 (no messages received)"
            ),
            Violation::FinalizeNonStream {
                node,
                terminal,
                key,
            } => write!(
                f,
                "finalize on non-streaming terminal {terminal} of '{node}' for key {key}"
            ),
            Violation::EmptyStream { node, key } => write!(
                f,
                "empty finalized stream on '{node}' for key {key}: no identity value, \
                 task not launched"
            ),
            Violation::StreamWithoutReducer {
                node,
                terminal,
                key,
            } => write!(
                f,
                "data message on streaming terminal {terminal} of '{node}' for key {key} \
                 with no reducer installed; message dropped"
            ),
            Violation::DroppedSend { edge, keys } => write!(
                f,
                "edge '{edge}' has no consumer terminal: {keys} send(s) silently dropped"
            ),
        }
    }
}

/// Thread-safe violation log owned by the runtime context. Recording only
/// happens from `checked` call sites (plus zero-consumer edge drops); with
/// the feature off the log stays empty and costs one untouched mutex per
/// execution.
#[derive(Default)]
pub struct Sanitizer {
    log: Mutex<Vec<Violation>>,
}

impl Sanitizer {
    /// Append a violation.
    pub fn record(&self, v: Violation) {
        self.log.lock().push(v);
    }

    /// Number of violations recorded so far.
    pub fn len(&self) -> usize {
        self.log.lock().len()
    }

    /// Whether no violation was recorded.
    pub fn is_empty(&self) -> bool {
        self.log.lock().is_empty()
    }

    /// Drain the log (done once by `Executor::finish`).
    pub fn take(&self) -> Vec<Violation> {
        std::mem::take(&mut *self.log.lock())
    }
}
