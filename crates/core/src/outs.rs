//! Task-body output interface (`ttg::send` / `ttg::broadcast`) and input
//! terminal references for streaming control and seeding.

use std::sync::Arc;

use crate::ctx::RuntimeCtx;
use crate::node::NodeInner;
use crate::tuples::TermAt;
use crate::types::{Data, Key};

/// The tuple of output terminals handed to a task body.
///
/// `outs.send::<I>(key, value)` sends to output terminal `I`
/// (`ttg::send`), `outs.broadcast::<I>(&keys, value)` sends one value to
/// many task IDs (`ttg::broadcast`, Fig. 2b). The terminal index is checked
/// at compile time against the output edges given to `make_tt`.
pub struct Outs<'a, T> {
    terms: &'a T,
    task_id: u64,
    rank: usize,
    ctx: &'a Arc<RuntimeCtx>,
}

impl<'a, T> Outs<'a, T> {
    pub(crate) fn new(terms: &'a T, task_id: u64, rank: usize, ctx: &'a Arc<RuntimeCtx>) -> Self {
        Outs {
            terms,
            task_id,
            rank,
            ctx,
        }
    }

    /// Send `v` to task `k` on output terminal `I`.
    pub fn send<const I: usize>(&self, k: <T as TermAt<I>>::K, v: <T as TermAt<I>>::V)
    where
        T: TermAt<I>,
    {
        self.terms
            .at()
            .send_one(k, v, self.task_id, self.rank, self.ctx);
    }

    /// Send one copy of `v` to every task in `keys` on output terminal `I`.
    pub fn broadcast<const I: usize>(&self, keys: &[<T as TermAt<I>>::K], v: <T as TermAt<I>>::V)
    where
        T: TermAt<I>,
    {
        self.terms
            .at()
            .broadcast_keys(keys, v, self.task_id, self.rank, self.ctx);
    }

    /// Rank this task is executing on.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the execution.
    pub fn n_ranks(&self) -> usize {
        self.ctx.n_ranks()
    }

    /// Unique id of the executing task instance.
    pub fn task_id(&self) -> u64 {
        self.task_id
    }

    /// Runtime context (advanced use: stream control via [`InRef`]).
    pub fn ctx(&self) -> &Arc<RuntimeCtx> {
        self.ctx
    }
}

/// A reference to one input terminal of a template task.
///
/// Used to inject seed messages from outside the graph and to control
/// streaming terminals (per-key stream sizes, finalization) from within
/// task bodies — the TTG `tt->in<i>()` idiom.
pub struct InRef<K: Key, V: Data> {
    // Holds the node strongly: unlike edge consumer ports (which must be
    // `Weak` to break the node → edge → port cycle), an `InRef` is an
    // external handle with no cycle, and a strong pointer keeps the seeding
    // hot path free of both a heap allocation per handle and the
    // upgrade/downgrade refcount traffic per call.
    node: Arc<NodeInner<K>>,
    terminal: u16,
    _ph: std::marker::PhantomData<fn() -> V>,
}

impl<K: Key, V: Data> Clone for InRef<K, V> {
    fn clone(&self) -> Self {
        InRef {
            node: Arc::clone(&self.node),
            terminal: self.terminal,
            _ph: std::marker::PhantomData,
        }
    }
}

impl<K: Key, V: Data> InRef<K, V> {
    pub(crate) fn new(node: Arc<NodeInner<K>>, terminal: u16) -> Self {
        InRef {
            node,
            terminal,
            _ph: std::marker::PhantomData,
        }
    }

    /// Id of the template task this terminal belongs to.
    pub fn node_id(&self) -> u32 {
        self.node.id
    }

    /// Input terminal index within the template task.
    pub fn terminal(&self) -> usize {
        self.terminal as usize
    }

    /// Inject a seed message from outside the graph (no provenance).
    pub fn seed(&self, ctx: &Arc<RuntimeCtx>, k: K, v: V) {
        crate::edge::port_seed(&self.node, self.terminal, k, v, ctx);
    }

    /// Set the expected stream size for key `k` from within a task.
    pub fn set_size<T>(&self, outs: &Outs<'_, T>, k: &K, n: usize) {
        crate::edge::port_set_stream_size(&self.node, self.terminal, k, n, outs.rank(), outs.ctx());
    }

    /// Set the expected stream size for key `k` from outside the graph.
    /// Delivered through the owner's communication thread.
    pub fn set_size_external(&self, ctx: &Arc<RuntimeCtx>, k: &K, n: usize) {
        crate::edge::port_set_stream_size(&self.node, self.terminal, k, n, usize::MAX, ctx);
    }

    /// Finalize an unbounded stream for key `k` from within a task.
    pub fn finalize<T>(&self, outs: &Outs<'_, T>, k: &K) {
        crate::edge::port_finalize(&self.node, self.terminal, k, outs.rank(), outs.ctx());
    }
}
