//! Lock-discipline annotations for the core matching path, consumed by
//! the `ttg-check` lock-order analysis (diagnostics TTG050/TTG051).
//!
//! The matching table is sharded by key hash; an insert or extract locks
//! exactly one shard, and a completed match releases the shard **before**
//! launching the assembled task (the launch may re-enter `send` on an
//! arbitrary other shard, so launching under the lock would deadlock).
//! That release-then-launch rule is the whole discipline.

/// Every mutex class on the matching path, by field name.
pub const LOCK_CLASSES: &[&str] = &["node.shards"];

/// Permitted nestings, outer acquired first. The core sanctions none.
pub const LOCK_ORDER: &[(&str, &str)] = &[];

/// Striped classes: one lock per matching shard; re-entrant sends take a
/// different shard only after the first is released, never both.
pub const STRIPED_LOCKS: &[(&str, bool)] = &[("node.shards", false)];
