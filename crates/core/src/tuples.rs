//! Arity-generic plumbing: tuples of input edges, output edges, output
//! terminals, and tuple-index traits.
//!
//! `make_tt` is a single generic function; these macro-generated trait
//! implementations give it input/output arities 1..=6, which covers every
//! template task in the paper's four applications.

use std::any::Any;
use std::sync::Arc;

use ttg_comm::{ReadBuf, WireError, WriteBuf};

use crate::ctx::RuntimeCtx;
use crate::edge::{Edge, OutTerm, PortImpl};
use crate::node::{InputMeta, NodeInner};
use crate::types::{Data, ErasedVal, Key};

/// Build the per-terminal vtable for value type `V`.
pub fn meta_for<V: Data>() -> InputMeta {
    InputMeta {
        decode: Arc::new(|r: &mut ReadBuf<'_>| {
            V::decode(r).map(|v| Box::new(v) as Box<dyn Any + Send>)
        }),
        decode_splitmd: Arc::new(|r: &mut ReadBuf<'_>, payload: &[u8]| {
            let mut v = V::split_decode_md(r)?;
            v.split_attach(payload);
            Ok::<_, WireError>(Box::new(v) as Box<dyn Any + Send>)
        }),
        clone_boxed: Arc::new(|b: &(dyn Any + Send)| {
            let v = b.downcast_ref::<V>().expect("clone_boxed type mismatch");
            Box::new(v.clone()) as Box<dyn Any + Send>
        }),
        to_shared: Arc::new(|b: Box<dyn Any + Send>| {
            let v = b.downcast::<V>().expect("to_shared type mismatch");
            Arc::new(*v) as Arc<dyn Any + Send + Sync>
        }),
        encode: Arc::new(|ev: &ErasedVal, b: &mut WriteBuf| {
            ev.with_ref::<V, _>(|v| v.encode(b))
                .ok_or_else(|| WireError::new("snapshot: slot value type mismatch"))
        }),
        encode_boxed: Arc::new(|a: &(dyn Any + Send), b: &mut WriteBuf| {
            let v = a.downcast_ref::<V>().ok_or_else(|| {
                WireError::new("snapshot: stream accumulator is not the terminal's wire type")
            })?;
            v.encode(b);
            Ok(())
        }),
    }
}

/// A tuple of input edges `(Edge<K, V0>, ..)` — all sharing the task-ID
/// type `K` of the consuming template task.
pub trait EdgeList<K: Key>: 'static {
    /// Tuple of the input value types `(V0, ..)`.
    type Values: Send + 'static;
    /// Number of input terminals.
    const N: usize;
    /// Per-terminal vtables.
    fn metas(&self) -> Vec<InputMeta>;
    /// Edge identity of each input terminal (for the static verifier).
    fn decls(&self) -> Vec<crate::inspect::EdgeDecl>;
    /// Register one consumer port per edge on `node`.
    fn connect(&self, node: &Arc<NodeInner<K>>);
    /// Downcast the erased input values into the typed tuple, tracking the
    /// copy plane: moves out of shared handles and refcount-bump clones
    /// count as avoided deep copies, deep clones of still-shared values
    /// count as copy-on-write clones (with their byte cost).
    fn extract(vals: Vec<ErasedVal>, rank: usize, ctx: &RuntimeCtx) -> Self::Values;
}

macro_rules! impl_edge_list {
    ($n:expr; $($V:ident : $idx:tt),+) => {
        impl<K: Key, $($V: Data),+> EdgeList<K> for ($(Edge<K, $V>,)+) {
            type Values = ($($V,)+);
            const N: usize = $n;

            fn metas(&self) -> Vec<InputMeta> {
                vec![$(meta_for::<$V>()),+]
            }

            fn decls(&self) -> Vec<crate::inspect::EdgeDecl> {
                vec![$(self.$idx.decl()),+]
            }

            fn connect(&self, node: &Arc<NodeInner<K>>) {
                $(
                    self.$idx.add_consumer(Arc::new(PortImpl::<K, $V>::new(
                        Arc::downgrade(node),
                        $idx as u16,
                    )));
                )+
            }

            fn extract(vals: Vec<ErasedVal>, rank: usize, ctx: &RuntimeCtx) -> Self::Values {
                let mut it = vals.into_iter();
                ($(
                    {
                        let ev = it.next().expect("missing input value");
                        let shared = ev.is_shared();
                        let (v, copied): ($V, bool) =
                            ev.take().expect("input value type mismatch");
                        if shared {
                            if !copied {
                                // Last live holder: moved the original
                                // allocation out of the Arc.
                                ctx.metrics.count_deep_copy_avoided(rank);
                            } else {
                                let cost = ttg_comm::Wire::clone_cost_bytes(&v);
                                if cost == 0 {
                                    // Refcount-bump clone (e.g. Arc<T>
                                    // payloads): shared, but still no deep
                                    // copy.
                                    ctx.metrics.count_deep_copy_avoided(rank);
                                } else {
                                    // Raced live readers: paid a real
                                    // copy-on-write clone.
                                    ctx.fabric.count_data_copy();
                                    ctx.metrics.count_cow_clone(rank, cost as u64);
                                }
                            }
                        } else if copied {
                            ctx.fabric.count_data_copy();
                        }
                        v
                    },
                )+)
            }
        }
    };
}

impl_edge_list!(1; V0: 0);
impl_edge_list!(2; V0: 0, V1: 1);
impl_edge_list!(3; V0: 0, V1: 1, V2: 2);
impl_edge_list!(4; V0: 0, V1: 1, V2: 2, V3: 3);
impl_edge_list!(5; V0: 0, V1: 1, V2: 2, V3: 3, V4: 4);
impl_edge_list!(6; V0: 0, V1: 1, V2: 2, V3: 3, V4: 4, V5: 5);

/// A tuple of output edges `(Edge<K0, W0>, ..)` — each with its own key and
/// value type.
pub trait OutEdgeList: 'static {
    /// Tuple of output terminals `(OutTerm<K0, W0>, ..)`.
    type Terms: Send + Sync + 'static;
    /// Wrap the edges into producer-side terminals.
    fn terms(&self) -> Self::Terms;
    /// Edge identity of each output terminal (for the static verifier).
    fn decls(&self) -> Vec<crate::inspect::EdgeDecl>;
}

impl OutEdgeList for () {
    type Terms = ();
    fn terms(&self) -> Self::Terms {}
    fn decls(&self) -> Vec<crate::inspect::EdgeDecl> {
        Vec::new()
    }
}

macro_rules! impl_out_edge_list {
    ($($K:ident, $W:ident : $idx:tt),+) => {
        impl<$($K: Key, $W: Data),+> OutEdgeList for ($(Edge<$K, $W>,)+) {
            type Terms = ($(OutTerm<$K, $W>,)+);
            fn terms(&self) -> Self::Terms {
                ($(OutTerm::new(self.$idx.clone()),)+)
            }
            fn decls(&self) -> Vec<crate::inspect::EdgeDecl> {
                vec![$(self.$idx.decl()),+]
            }
        }
    };
}

impl_out_edge_list!(K0, W0: 0);
impl_out_edge_list!(K0, W0: 0, K1, W1: 1);
impl_out_edge_list!(K0, W0: 0, K1, W1: 1, K2, W2: 2);
impl_out_edge_list!(K0, W0: 0, K1, W1: 1, K2, W2: 2, K3, W3: 3);
impl_out_edge_list!(K0, W0: 0, K1, W1: 1, K2, W2: 2, K3, W3: 3, K4, W4: 4);
impl_out_edge_list!(K0, W0: 0, K1, W1: 1, K2, W2: 2, K3, W3: 3, K4, W4: 4, K5, W5: 5);

/// Index access into a tuple of output terminals: gives `outs.send::<I>()`
/// its key/value types.
pub trait TermAt<const I: usize> {
    /// Task-ID type of terminal `I`.
    type K: Key;
    /// Data type of terminal `I`.
    type V: Data;
    /// The terminal itself.
    fn at(&self) -> &OutTerm<Self::K, Self::V>;
}

macro_rules! impl_term_at {
    // one impl: tuple of (K0,W0)..(Kn,Wn), index $i selecting ($KS, $WS)
    (($($K:ident, $W:ident),+); $i:expr; $KS:ident, $WS:ident; $idx:tt) => {
        impl<$($K: Key, $W: Data),+> TermAt<$i> for ($(OutTerm<$K, $W>,)+) {
            type K = $KS;
            type V = $WS;
            fn at(&self) -> &OutTerm<$KS, $WS> {
                &self.$idx
            }
        }
    };
}

impl_term_at!((K0, W0); 0; K0, W0; 0);

impl_term_at!((K0, W0, K1, W1); 0; K0, W0; 0);
impl_term_at!((K0, W0, K1, W1); 1; K1, W1; 1);

impl_term_at!((K0, W0, K1, W1, K2, W2); 0; K0, W0; 0);
impl_term_at!((K0, W0, K1, W1, K2, W2); 1; K1, W1; 1);
impl_term_at!((K0, W0, K1, W1, K2, W2); 2; K2, W2; 2);

impl_term_at!((K0, W0, K1, W1, K2, W2, K3, W3); 0; K0, W0; 0);
impl_term_at!((K0, W0, K1, W1, K2, W2, K3, W3); 1; K1, W1; 1);
impl_term_at!((K0, W0, K1, W1, K2, W2, K3, W3); 2; K2, W2; 2);
impl_term_at!((K0, W0, K1, W1, K2, W2, K3, W3); 3; K3, W3; 3);

impl_term_at!((K0, W0, K1, W1, K2, W2, K3, W3, K4, W4); 0; K0, W0; 0);
impl_term_at!((K0, W0, K1, W1, K2, W2, K3, W3, K4, W4); 1; K1, W1; 1);
impl_term_at!((K0, W0, K1, W1, K2, W2, K3, W3, K4, W4); 2; K2, W2; 2);
impl_term_at!((K0, W0, K1, W1, K2, W2, K3, W3, K4, W4); 3; K3, W3; 3);
impl_term_at!((K0, W0, K1, W1, K2, W2, K3, W3, K4, W4); 4; K4, W4; 4);

impl_term_at!((K0, W0, K1, W1, K2, W2, K3, W3, K4, W4, K5, W5); 0; K0, W0; 0);
impl_term_at!((K0, W0, K1, W1, K2, W2, K3, W3, K4, W4, K5, W5); 1; K1, W1; 1);
impl_term_at!((K0, W0, K1, W1, K2, W2, K3, W3, K4, W4, K5, W5); 2; K2, W2; 2);
impl_term_at!((K0, W0, K1, W1, K2, W2, K3, W3, K4, W4, K5, W5); 3; K3, W3; 3);
impl_term_at!((K0, W0, K1, W1, K2, W2, K3, W3, K4, W4, K5, W5); 4; K4, W4; 4);
impl_term_at!((K0, W0, K1, W1, K2, W2, K3, W3, K4, W4, K5, W5); 5; K5, W5; 5);

/// Index access into a tuple of value types: gives the typed
/// `set_input_reducer::<I>` and `in_ref::<I>` on task handles.
pub trait ValueAt<const I: usize> {
    /// Value type at index `I`.
    type V: Data;
}

macro_rules! impl_value_at {
    (($($V:ident),+); $i:expr; $VS:ident) => {
        impl<$($V: Data),+> ValueAt<$i> for ($($V,)+) {
            type V = $VS;
        }
    };
}

impl_value_at!((V0); 0; V0);

impl_value_at!((V0, V1); 0; V0);
impl_value_at!((V0, V1); 1; V1);

impl_value_at!((V0, V1, V2); 0; V0);
impl_value_at!((V0, V1, V2); 1; V1);
impl_value_at!((V0, V1, V2); 2; V2);

impl_value_at!((V0, V1, V2, V3); 0; V0);
impl_value_at!((V0, V1, V2, V3); 1; V1);
impl_value_at!((V0, V1, V2, V3); 2; V2);
impl_value_at!((V0, V1, V2, V3); 3; V3);

impl_value_at!((V0, V1, V2, V3, V4); 0; V0);
impl_value_at!((V0, V1, V2, V3, V4); 1; V1);
impl_value_at!((V0, V1, V2, V3, V4); 2; V2);
impl_value_at!((V0, V1, V2, V3, V4); 3; V3);
impl_value_at!((V0, V1, V2, V3, V4); 4; V4);

impl_value_at!((V0, V1, V2, V3, V4, V5); 0; V0);
impl_value_at!((V0, V1, V2, V3, V4, V5); 1; V1);
impl_value_at!((V0, V1, V2, V3, V4, V5); 2; V2);
impl_value_at!((V0, V1, V2, V3, V4, V5); 3; V3);
impl_value_at!((V0, V1, V2, V3, V4, V5); 4; V4);
impl_value_at!((V0, V1, V2, V3, V4, V5); 5; V5);
