//! Batched successor activation.
//!
//! When a task body (or an AM delivery on the comm thread) completes, the
//! nodes it fed may launch several newly ready tasks — and each launch
//! used to pay its own pool submit, with its own wake-announcement round
//! trip through the pool's sleep lock. A [`BatchScope`] collects the jobs
//! spawned while a parent work item runs in thread-local storage and
//! flushes them on drop as one `submit_batch` per destination rank: one
//! `wake_seq` bump covers the whole successor group (Taskflow-style
//! batched notification, promoted from the simnet policy lab).
//!
//! Quiescence stays airtight: jobs are buffered only while the parent
//! work item is still active (its own quiescence unit — or the in-flight
//! packet on the comm thread — is not released until after the scope
//! drops and `submit_batch` has registered every child).

use std::cell::RefCell;
use std::sync::Arc;

use crate::ctx::RuntimeCtx;

thread_local! {
    /// Jobs spawned under the innermost active scope on this thread,
    /// tagged with their destination rank. `None` when no scope is active.
    static PENDING: RefCell<Option<Vec<(usize, ttg_runtime::Job)>>> =
        const { RefCell::new(None) };
}

/// RAII guard that batches successor submissions on the current thread.
/// Re-entrant: nested scopes are no-ops and the outermost one flushes.
pub(crate) struct BatchScope {
    ctx: Arc<RuntimeCtx>,
    owner: bool,
}

impl BatchScope {
    /// Open a scope; until it drops, [`enqueue`] buffers instead of
    /// submitting.
    pub(crate) fn enter(ctx: &Arc<RuntimeCtx>) -> Self {
        let owner = PENDING.with(|p| {
            let mut p = p.borrow_mut();
            if p.is_none() {
                *p = Some(Vec::new());
                true
            } else {
                false
            }
        });
        BatchScope {
            ctx: Arc::clone(ctx),
            owner,
        }
    }
}

impl Drop for BatchScope {
    fn drop(&mut self) {
        if !self.owner {
            return;
        }
        let jobs = PENDING.with(|p| p.borrow_mut().take()).unwrap_or_default();
        if jobs.is_empty() {
            return;
        }
        // Group by destination rank, preserving spawn order within each.
        let mut groups: Vec<(usize, Vec<ttg_runtime::Job>)> = Vec::new();
        for (rank, job) in jobs {
            match groups.iter_mut().find(|g| g.0 == rank) {
                Some(g) => g.1.push(job),
                None => groups.push((rank, vec![job])),
            }
        }
        for (rank, group) in groups {
            self.ctx.pool(rank).submit_batch(group);
        }
    }
}

/// Route a spawned job: buffered when a batch scope is active on this
/// thread, direct submit otherwise (external seeds, user threads).
pub(crate) fn enqueue(rank: usize, job: ttg_runtime::Job, ctx: &Arc<RuntimeCtx>) {
    let unbuffered = PENDING.with(|p| {
        let mut p = p.borrow_mut();
        match p.as_mut() {
            Some(v) => {
                v.push((rank, job));
                None
            }
            None => Some(job),
        }
    });
    if let Some(job) = unbuffered {
        ctx.pool(rank).submit(job);
    }
}
