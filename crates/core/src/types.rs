//! Fundamental type vocabulary of the TTG model: task-ID keys, flowing data,
//! the pure-control type [`Ctl`], and the internal erased value
//! representation used by the transport layer.

use std::any::Any;
use std::fmt;
use std::hash::Hash;
use std::sync::{Arc, OnceLock};

use ttg_comm::{ReadBuf, Wire, WireError, WriteBuf};

/// A task identifier ("task ID" in the paper): the control part of every
/// message. `()` yields pure dataflow (a single task instance per template).
pub trait Key: Clone + Eq + Hash + fmt::Debug + Wire + Send + Sync + 'static {}
impl<T: Clone + Eq + Hash + fmt::Debug + Wire + Send + Sync + 'static> Key for T {}

/// A value flowing along an edge: the data part of every message. Use
/// [`Ctl`] for pure control flow.
pub trait Data: Clone + Wire + Send + Sync + 'static {}
impl<T: Clone + Wire + Send + Sync + 'static> Data for T {}

/// Zero-sized "no data" token: a message whose data part is void, giving
/// pure control flow (paper §II).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ctl;

impl Wire for Ctl {
    const KIND: ttg_comm::WireKind = ttg_comm::WireKind::Trivial;
    fn encode(&self, _b: &mut WriteBuf) {}
    fn decode(_r: &mut ReadBuf<'_>) -> Result<Self, WireError> {
        Ok(Ctl)
    }
    fn wire_size(&self) -> usize {
        0
    }
}

/// How a backend passes data between tasks on the same rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalPass {
    /// Share immutable data behind an `Arc`; a private copy is made only if
    /// a mutating consumer coexists with other consumers (PaRSEC-like: the
    /// runtime owns the data and tracks its life-cycle).
    Share,
    /// Deep-copy the value for every consumer (MADNESS-like).
    Copy,
}

/// Lazily filled serialize-once cache attached to a shared broadcast value.
///
/// A value fanning out to several consumer ports used to be re-serialized
/// by every port that had remote destinations. With the cache, whichever
/// port first needs the archive encoding (or the split-metadata payload)
/// pays for it once; every other port reuses the frozen byte slab.
#[derive(Default)]
pub struct EncodeCache {
    bytes: OnceLock<Arc<Vec<u8>>>,
    payload: OnceLock<Arc<Vec<u8>>>,
}

impl EncodeCache {
    /// The archive/trivial encoding of the value, computing it with `f` on
    /// first use.
    pub fn bytes(&self, f: impl FnOnce() -> Vec<u8>) -> Arc<Vec<u8>> {
        Arc::clone(self.bytes.get_or_init(|| Arc::new(f())))
    }

    /// The split-metadata RMA payload of the value, computing it with `f`
    /// on first use.
    pub fn payload(&self, f: impl FnOnce() -> Vec<u8>) -> Arc<Vec<u8>> {
        Arc::clone(self.payload.get_or_init(|| Arc::new(f())))
    }
}

/// A value travelling from an output terminal to the consumer ports of one
/// edge.
///
/// A single-port send keeps exclusive ownership (`Owned`) so the common
/// case still moves the value end to end. A multi-port broadcast erases
/// the value once into an `Arc` that every port — and through it every
/// rank-local consumer — shares, bundled with the [`EncodeCache`] so remote
/// fan-out serializes once per broadcast rather than once per port.
pub enum FanoutVal<V: Data> {
    /// Exclusively owned: the single-consumer-port fast path.
    Owned(V),
    /// Shared across the consumer ports of one broadcast.
    Shared(Arc<V>, Arc<EncodeCache>),
}

impl<V: Data> FanoutVal<V> {
    /// Borrow the value (for encoding and metadata).
    pub fn get(&self) -> &V {
        match self {
            FanoutVal::Owned(v) => v,
            FanoutVal::Shared(a, _) => a,
        }
    }
}

/// Inline storage threshold for [`ErasedVal::erase`].
const SMALL_CAP: usize = 16;

/// A small plain-data value stored inline, bypassing the heap.
///
/// Only constructed through [`ErasedVal::erase`], which guarantees the
/// erased type fits in `bytes`, needs no drop, and is `Send + Sync`
/// (`V: Data`). The value is stored unaligned and recovered with
/// `read_unaligned` after a `TypeId` check.
pub struct SmallVal {
    bytes: [std::mem::MaybeUninit<u8>; SMALL_CAP],
    tid: std::any::TypeId,
}

/// Type-erased value travelling to an input terminal.
pub enum ErasedVal {
    /// Shared immutable handle (may be held by several pending inputs).
    Shared(Arc<dyn Any + Send + Sync>),
    /// Exclusively owned value.
    Owned(Box<dyn Any + Send>),
    /// Small trivially-movable value stored inline (no heap allocation).
    Small(SmallVal),
}

impl ErasedVal {
    /// Erase an owned `v`, storing it inline when it is small and free of
    /// drop glue — the overwhelmingly common case for task-ID-sized payloads
    /// on the matching hot path — and boxing it otherwise.
    pub fn erase<V: Data>(v: V) -> Self {
        if std::mem::size_of::<V>() <= SMALL_CAP && !std::mem::needs_drop::<V>() {
            let mut bytes = [std::mem::MaybeUninit::<u8>::uninit(); SMALL_CAP];
            // SAFETY: size checked above; the bytes are only re-read as `V`
            // after a `TypeId` match in `take`, and `V` has no drop glue so
            // forgetting the original is a no-op.
            unsafe {
                std::ptr::write_unaligned(bytes.as_mut_ptr() as *mut V, v);
            }
            ErasedVal::Small(SmallVal {
                bytes,
                tid: std::any::TypeId::of::<V>(),
            })
        } else {
            ErasedVal::Owned(Box::new(v))
        }
    }

    /// Erase an `Arc`-shared value for multi-consumer fan-out: every
    /// consumer holds the same allocation, and [`ErasedVal::take`] moves it
    /// out (refcount 1) or clones-on-write (still shared).
    pub fn erase_shared<V: Data>(arc: Arc<V>) -> Self {
        ErasedVal::Shared(arc as Arc<dyn Any + Send + Sync>)
    }

    /// Whether this value is held through a shared (`Arc`) handle.
    pub fn is_shared(&self) -> bool {
        matches!(self, ErasedVal::Shared(_))
    }

    /// Recover the concrete value, cloning only when the handle is still
    /// shared with other consumers. Returns `None` on a type mismatch
    /// (which indicates graph-construction bug and is asserted upstream).
    pub fn take<V: Data>(self) -> Option<(V, bool)> {
        match self {
            ErasedVal::Owned(b) => b.downcast::<V>().ok().map(|v| (*v, false)),
            ErasedVal::Shared(arc) => {
                let arc = arc.downcast::<V>().ok()?;
                match Arc::try_unwrap(arc) {
                    Ok(v) => Some((v, false)),
                    Err(arc) => Some(((*arc).clone(), true)),
                }
            }
            ErasedVal::Small(s) => {
                if s.tid == std::any::TypeId::of::<V>() {
                    // SAFETY: TypeId matches the type written in `erase`.
                    let v = unsafe { (s.bytes.as_ptr() as *const V).read_unaligned() };
                    Some((v, false))
                } else {
                    None
                }
            }
        }
    }

    /// Convert into an owned boxed value (cloning if shared), for use as a
    /// reduction accumulator.
    pub fn into_owned<V: Data>(self) -> Option<(Box<dyn Any + Send>, bool)> {
        let (v, copied) = self.take::<V>()?;
        Some((Box::new(v), copied))
    }

    /// Borrow the concrete value without consuming the handle (the
    /// checkpoint encoder walks live matching-table slots in place).
    /// Returns `None` on a type mismatch.
    pub fn with_ref<V: Data, R>(&self, f: impl FnOnce(&V) -> R) -> Option<R> {
        match self {
            ErasedVal::Owned(b) => b.downcast_ref::<V>().map(f),
            ErasedVal::Shared(arc) => arc.downcast_ref::<V>().map(f),
            ErasedVal::Small(s) => {
                if s.tid == std::any::TypeId::of::<V>() {
                    // SAFETY: TypeId matches the type written in `erase`.
                    // The unaligned copy is wrapped in `ManuallyDrop` so the
                    // value is never dropped twice (`V` has no drop glue
                    // anyway — `erase` only inlines such types).
                    let v = std::mem::ManuallyDrop::new(unsafe {
                        (s.bytes.as_ptr() as *const V).read_unaligned()
                    });
                    Some(f(&v))
                } else {
                    None
                }
            }
        }
    }
}

impl fmt::Debug for ErasedVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErasedVal::Shared(_) => write!(f, "ErasedVal::Shared(..)"),
            ErasedVal::Owned(_) => write!(f, "ErasedVal::Owned(..)"),
            ErasedVal::Small(_) => write!(f, "ErasedVal::Small(..)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctl_is_zero_bytes() {
        assert_eq!(ttg_comm::to_bytes(&Ctl).len(), 0);
        let c: Ctl = ttg_comm::from_bytes(&[]).unwrap();
        assert_eq!(c, Ctl);
    }

    #[test]
    fn erased_owned_roundtrip() {
        let ev = ErasedVal::Owned(Box::new(41i64));
        let (v, copied) = ev.take::<i64>().unwrap();
        assert_eq!(v, 41);
        assert!(!copied);
    }

    #[test]
    fn erased_shared_unique_moves_without_copy() {
        let ev = ErasedVal::Shared(Arc::new(String::from("x")));
        let (v, copied) = ev.take::<String>().unwrap();
        assert_eq!(v, "x");
        assert!(!copied);
    }

    #[test]
    fn erased_shared_multi_copy_on_take() {
        let arc: Arc<dyn Any + Send + Sync> = Arc::new(7u32);
        let ev1 = ErasedVal::Shared(Arc::clone(&arc));
        let ev2 = ErasedVal::Shared(arc);
        let (v1, copied1) = ev1.take::<u32>().unwrap();
        assert!(copied1); // still shared with ev2
        let (v2, copied2) = ev2.take::<u32>().unwrap();
        assert!(!copied2); // now unique
        assert_eq!((v1, v2), (7, 7));
    }

    #[test]
    fn erased_type_mismatch_is_none() {
        let ev = ErasedVal::Owned(Box::new(1u8));
        assert!(ev.take::<u16>().is_none());
    }

    #[test]
    fn erase_small_roundtrip_inline() {
        let ev = ErasedVal::erase(0xdead_beef_u64);
        assert!(matches!(ev, ErasedVal::Small(_)));
        let (v, copied) = ev.take::<u64>().unwrap();
        assert_eq!(v, 0xdead_beef);
        assert!(!copied);
    }

    #[test]
    fn erase_small_type_mismatch_is_none() {
        let ev = ErasedVal::erase(1u8);
        assert!(ev.take::<u16>().is_none());
    }

    #[test]
    fn erase_large_or_droppy_falls_back_to_owned() {
        let ev = ErasedVal::erase(String::from("heap"));
        assert!(matches!(ev, ErasedVal::Owned(_)));
        let (v, copied) = ev.take::<String>().unwrap();
        assert_eq!(v, "heap");
        assert!(!copied);

        let ev = ErasedVal::erase([0u8; 64]);
        assert!(matches!(ev, ErasedVal::Owned(_)));
        assert!(ev.take::<[u8; 64]>().is_some());
    }
}
