//! Distributed execution of a template task graph.
//!
//! The executor stands in for the paper's SPMD launch: it creates the
//! fabric, one worker pool and one communication thread per rank, attaches
//! the graph, accepts seed messages, and waits for global quiescence.
//!
//! Communication failures never panic the process: delivery errors become
//! structured [`CommError`] records in the [`ExecReport`], and a configurable
//! delivery deadline converts a dead link into a reported per-rank failure
//! instead of an unbounded hang (see DESIGN §8).

use std::sync::Arc;
use std::time::{Duration, Instant};

use ttg_comm::{
    CommError, CommErrorKind, Fabric, FaultPlan, FileSnapshotSink, MemorySnapshotSink, Packet,
    ReadBuf, SharedSnapshotSink, StatsSnapshot, TransportSpec, WireError, WriteBuf,
};
use ttg_runtime::WorkerPool;

use crate::backend::BackendSpec;
use crate::ctx::RuntimeCtx;
use crate::graph::Graph;
use crate::trace::TaskEvent;

/// Execution parameters.
#[derive(Clone)]
pub struct ExecConfig {
    /// Number of logical ranks ("processes").
    pub ranks: usize,
    /// Worker threads per rank.
    pub workers_per_rank: usize,
    /// Backend configuration.
    pub backend: BackendSpec,
    /// Record a task/dependency trace for simnet projection.
    pub trace: bool,
    /// Fault-injection plan installed on the fabric (chaos testing).
    pub faults: Option<FaultPlan>,
    /// Abort the wait for quiescence after this long and report a
    /// `DeadlineMissed` comm error instead of hanging. Defaults to 30 s
    /// when a fault plan is installed, unlimited otherwise.
    pub delivery_deadline: Option<Duration>,
    /// Link layer carrying inter-rank traffic: in-process channels
    /// (default), a socket mesh (tcp/uds), or one rank of a multi-process
    /// job (DESIGN §9).
    pub transport: TransportSpec,
    /// Seed for the worker pools' steal-victim PRNG streams. `Some` makes
    /// steal order deterministic per (seed, rank, worker) — like the
    /// fault injector's splitmix64 streams — for reproducible benchmark
    /// runs; `None` (default) keeps OS entropy.
    pub sched_seed: Option<u64>,
    /// Deadline for one-sided remote RMA fetches. `None` keeps the fabric
    /// default (30 s); a recovering job should set this well below the
    /// delivery deadline so a respawning rank surfaces as a structured
    /// `RmaTimeout` instead of stalling peers.
    pub rma_timeout: Option<Duration>,
    /// Where recovery snapshots are persisted when the fault plan enables
    /// checkpointing. `None` picks a default: the launch directory's
    /// file sink for a multi-process rank (`TTG_LAUNCH_DIR`), an
    /// in-memory sink otherwise.
    pub snapshot_sink: Option<SharedSnapshotSink>,
}

impl std::fmt::Debug for ExecConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecConfig")
            .field("ranks", &self.ranks)
            .field("workers_per_rank", &self.workers_per_rank)
            .field("backend", &self.backend)
            .field("trace", &self.trace)
            .field("faults", &self.faults)
            .field("delivery_deadline", &self.delivery_deadline)
            .field("transport", &self.transport)
            .field("sched_seed", &self.sched_seed)
            .field("rma_timeout", &self.rma_timeout)
            .field("snapshot_sink", &self.snapshot_sink.is_some())
            .finish()
    }
}

impl ExecConfig {
    /// Single-rank configuration with `workers` threads and the default
    /// backend (useful in tests).
    pub fn local(workers: usize) -> Self {
        ExecConfig {
            ranks: 1,
            workers_per_rank: workers,
            backend: BackendSpec::default_spec(),
            trace: false,
            faults: None,
            delivery_deadline: None,
            transport: TransportSpec::InProc,
            sched_seed: None,
            rma_timeout: None,
            snapshot_sink: None,
        }
    }

    /// `ranks` ranks × `workers` threads with the given backend.
    pub fn distributed(ranks: usize, workers: usize, backend: BackendSpec) -> Self {
        ExecConfig {
            ranks,
            workers_per_rank: workers,
            backend,
            trace: false,
            faults: None,
            delivery_deadline: None,
            transport: TransportSpec::InProc,
            sched_seed: None,
            rma_timeout: None,
            snapshot_sink: None,
        }
    }

    /// Enable trace recording.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Install a fault-injection plan (enables reliable delivery and, if
    /// no deadline was set, a 30 s delivery deadline).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        if self.delivery_deadline.is_none() {
            self.delivery_deadline = Some(Duration::from_secs(30));
        }
        self
    }

    /// Set the delivery deadline explicitly.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.delivery_deadline = Some(deadline);
        self
    }

    /// Select the link layer (see [`TransportSpec`]).
    pub fn with_transport(mut self, transport: TransportSpec) -> Self {
        self.transport = transport;
        self
    }

    /// Seed the worker pools' steal-victim streams (see
    /// [`ExecConfig::sched_seed`]).
    pub fn with_sched_seed(mut self, seed: u64) -> Self {
        self.sched_seed = Some(seed);
        self
    }

    /// Set the one-sided RMA fetch deadline (see
    /// [`ExecConfig::rma_timeout`]).
    pub fn with_rma_timeout(mut self, t: Duration) -> Self {
        self.rma_timeout = Some(t);
        self
    }

    /// Install a snapshot sink for checkpoint/restore recovery (see
    /// [`ExecConfig::snapshot_sink`]).
    pub fn with_snapshot_sink(mut self, sink: SharedSnapshotSink) -> Self {
        self.snapshot_sink = Some(sink);
        self
    }
}

/// Summary of one execution.
#[derive(Debug)]
pub struct ExecReport {
    /// Wall-clock time from executor start to quiescence.
    pub elapsed: Duration,
    /// Fabric counters at quiescence.
    pub comm: StatsSnapshot,
    /// Total tasks executed.
    pub tasks: u64,
    /// Per-template (name, tasks executed).
    pub per_node: Vec<(&'static str, u64)>,
    /// Task trace, when tracing was enabled.
    pub trace: Option<Vec<TaskEvent>>,
    /// Full telemetry snapshot (comm, sched, core subsystems) at finish.
    pub telemetry: ttg_telemetry::Snapshot,
    /// Runtime-sanitizer violations recorded during the run (populated by
    /// the `checked` feature's matching-path instrumentation; always
    /// includes nothing when the feature is off).
    pub violations: Vec<crate::inspect::Violation>,
    /// Partially matched keys left in the matching tables at quiescence:
    /// the stuck-key deadlock report. Non-empty means some tasks could
    /// never fire — the structured form of a silent hang.
    pub stuck: Vec<crate::inspect::StuckEntry>,
    /// Structured communication failures recorded during the run: retry
    /// budgets exhausted on dead links, post-shutdown sends, delivery
    /// errors, deadline misses. Empty on a healthy run.
    pub comm_errors: Vec<CommError>,
    /// Informational recovery events (TTG046 `RankRecovered`): one per
    /// successful checkpoint restore. Kept out of `comm_errors` so a
    /// recovered run still reads as healthy.
    pub recovery_events: Vec<CommError>,
}

/// A running TTG execution.
pub struct Executor {
    ctx: Arc<RuntimeCtx>,
    graph: Graph,
    comm_threads: Vec<std::thread::JoinHandle<()>>,
    deadline: Option<Duration>,
    started: Instant,
    /// Multi-process only: whether this rank has passed the start fence
    /// (the barrier at the head of the first `wait`).
    wait_fenced: std::sync::atomic::AtomicBool,
}

impl Executor {
    /// Start pools and communication threads for `graph`.
    ///
    /// Panics when the link layer cannot be brought up (socket bind or
    /// mesh handshake failure) — a launch-time environment error, reported
    /// with the structured transport diagnosis.
    pub fn new(graph: Graph, cfg: ExecConfig) -> Self {
        let fabric = Fabric::with_transport(cfg.ranks, cfg.faults.clone(), &cfg.transport)
            .unwrap_or_else(|e| panic!("transport bring-up failed: {e}"));
        if let Some(t) = cfg.rma_timeout {
            fabric.set_rma_timeout(t);
        }
        if fabric.recovery_enabled() {
            let sink = cfg.snapshot_sink.clone().unwrap_or_else(|| {
                // Multi-process ranks default to the launch directory so
                // snapshots survive the process they describe; in-process
                // recovery restores within one address space and needs no
                // filesystem traffic.
                match std::env::var("TTG_LAUNCH_DIR") {
                    Ok(dir) if fabric.local_rank().is_some() => {
                        Arc::new(FileSnapshotSink::new(dir)) as SharedSnapshotSink
                    }
                    _ => Arc::new(MemorySnapshotSink::new()) as SharedSnapshotSink,
                }
            });
            fabric.install_snapshot_sink(sink);
        }
        let ctx = RuntimeCtx::new(Arc::clone(&fabric), cfg.backend.clone(), cfg.trace);

        // A multi-process rank hosts only its own pool and comm thread;
        // an in-process fabric hosts all of them.
        let local_ranks: Vec<usize> = match fabric.local_rank() {
            Some(me) => vec![me],
            None => (0..cfg.ranks).collect(),
        };
        let pools: Vec<WorkerPool> = local_ranks
            .iter()
            .map(|&r| {
                WorkerPool::with_options(
                    cfg.workers_per_rank,
                    cfg.backend.scheduler,
                    Arc::clone(&ctx.quiescence),
                    &format!("r{r}"),
                    Some((fabric.telemetry(), r)),
                    // One stream family per rank so ranks don't mirror
                    // each other's victim order.
                    cfg.sched_seed.map(|s| s ^ ((r as u64) << 32)),
                )
            })
            .collect();
        ctx.pools.set(pools).ok().expect("pools set twice");

        // Feed the distributed termination detector: a process is idle
        // when its pools are quiescent (the in-flight packet check lives
        // in the fabric). Captures only the quiescence tracker — never
        // the fabric, which would leak a reference cycle.
        if fabric.local_rank().is_some() {
            let q = Arc::clone(&ctx.quiescence);
            fabric.install_idle_probe(Box::new(move || match q.probe() {
                Some(epoch) => (true, epoch),
                None => (false, q.epoch()),
            }));
        }

        for node in graph.nodes() {
            node.attach(cfg.ranks, cfg.workers_per_rank);
        }
        ctx.nodes
            .set(graph.nodes().to_vec())
            .ok()
            .expect("nodes set twice");

        // One communication/progress thread per hosted rank: the analog
        // of the backends' AM server / communication thread.
        let mut comm_threads = Vec::with_capacity(local_ranks.len());
        let remote = fabric.local_rank().is_some();
        for r in local_ranks {
            let rx = fabric.take_receiver(r);
            let ctx2 = Arc::clone(&ctx);
            comm_threads.push(
                std::thread::Builder::new()
                    .name(format!("comm-{r}"))
                    .spawn(move || {
                        // Remote ranks count delivered AMs themselves: the
                        // chaos packet counter only ticks for sequenced
                        // in-process traffic.
                        let mut rx_since_snap: u64 = 0;
                        while let Ok(pkt) = rx.recv() {
                            match pkt {
                                Packet::Am {
                                    handler,
                                    from,
                                    seq,
                                    payload,
                                } => {
                                    // Reliable-delivery gate: duplicates
                                    // (injected, retransmitted, reordered
                                    // strays) are discarded here and never
                                    // reach a task — nor the logical
                                    // in-flight count. The payload rides
                                    // along so recovery-enabled fabrics can
                                    // maintain their delivered-content log.
                                    if !ctx2.fabric.rx_accept_am(r, from, seq, handler, &payload) {
                                        ttg_comm::pool::recycle(payload);
                                        continue;
                                    }
                                    // Tasks this delivery readies flush as
                                    // one batch per rank when the scope
                                    // drops — before the packet is retired,
                                    // so quiescence never sees a gap.
                                    let batch = crate::batch::BatchScope::enter(&ctx2);
                                    if let Err(e) =
                                        ctx2.node(handler).deliver_am(r, &payload, &ctx2)
                                    {
                                        ctx2.fabric.record_error(CommError {
                                            kind: CommErrorKind::DeliveryFailed,
                                            from: (from != usize::MAX).then_some(from),
                                            to: Some(r),
                                            handler: Some(handler),
                                            seq: (seq != 0).then_some(seq),
                                            detail: e.to_string(),
                                        });
                                    }
                                    drop(batch);
                                    ctx2.fabric.packet_processed();
                                    // Hand the AM buffer back to the wire
                                    // buffer pool for the next send.
                                    ttg_comm::pool::recycle(payload);
                                    // Checkpoint trigger: between deliveries
                                    // on this rank's only delivery thread,
                                    // with the worker pool drained — the
                                    // consistent cut (DESIGN §13).
                                    if let Some(every) = ctx2.fabric.snapshot_interval() {
                                        let due = if remote {
                                            rx_since_snap += 1;
                                            rx_since_snap >= every
                                        } else {
                                            ctx2.fabric.snapshot_due(r)
                                        };
                                        // The delivery that made the snapshot
                                        // due usually readied tasks, so give
                                        // the pool a bounded drain window.
                                        // Tasks never block on this thread —
                                        // waiting cannot deadlock; at worst
                                        // the pool stays busy and the next
                                        // delivery retries.
                                        if due {
                                            let drain = Instant::now()
                                                + Duration::from_micros(500);
                                            loop {
                                                if ctx2.pool(r).is_idle() {
                                                    if take_snapshot(&ctx2, r) {
                                                        rx_since_snap = 0;
                                                    }
                                                    break;
                                                }
                                                if Instant::now() >= drain {
                                                    break;
                                                }
                                                std::thread::yield_now();
                                            }
                                        }
                                    }
                                }
                                Packet::Shutdown => break,
                            }
                        }
                    })
                    .expect("failed to spawn comm thread"),
            );
        }

        Executor {
            ctx,
            graph,
            comm_threads,
            deadline: cfg.delivery_deadline,
            started: Instant::now(),
            wait_fenced: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Runtime context (needed for seeding through [`crate::outs::InRef`]).
    pub fn ctx(&self) -> &Arc<RuntimeCtx> {
        &self.ctx
    }

    /// Number of ranks.
    pub fn n_ranks(&self) -> usize {
        self.ctx.n_ranks()
    }

    /// Reset the elapsed-time origin (call after seeding if setup time
    /// should be excluded).
    pub fn restart_clock(&mut self) {
        self.started = Instant::now();
    }

    /// Block until the execution is globally quiescent: no task running or
    /// queued on any rank and no message in flight.
    ///
    /// If a delivery deadline is configured and passes first, the wait
    /// gives up, records a structured `DeadlineMissed` [`CommError`] on
    /// the fabric, and returns — degraded, not hung.
    pub fn wait(&self) {
        if self.ctx.fabric.local_rank().is_some() {
            self.wait_remote();
            return;
        }
        let give_up = self.deadline.map(|d| Instant::now() + d);
        loop {
            // Recovery watchdog: a script-killed rank is restored once its
            // pool drains (kill only severs its links — queued tasks still
            // run to completion, and their sends were already dropped).
            for r in self.ctx.fabric.ranks_needing_recovery() {
                if self.ctx.pool(r).is_idle() {
                    recover_rank(&self.ctx, r);
                }
            }
            if self.ctx.fabric.packets_in_flight() == 0 && self.ctx.quiescence.is_quiescent() {
                // Confirm: no packet appeared while probing the pools.
                if self.ctx.fabric.packets_in_flight() == 0 && self.ctx.quiescence.is_quiescent() {
                    return;
                }
            }
            if let Some(t) = give_up {
                if Instant::now() >= t {
                    self.ctx.fabric.count_deadline_miss();
                    self.ctx.fabric.record_error(CommError {
                        kind: CommErrorKind::DeadlineMissed,
                        from: None,
                        to: None,
                        handler: None,
                        seq: None,
                        detail: format!(
                            "no quiescence within {:?} ({} packets in flight)",
                            self.deadline.unwrap(),
                            self.ctx.fabric.packets_in_flight()
                        ),
                    });
                    return;
                }
            }
            std::thread::sleep(Duration::from_micros(50));
        }
    }

    /// Multi-process wait: local quiescence is not global quiescence (a
    /// peer may still be about to send here), so rank 0 runs a distributed
    /// termination detector and broadcasts the verdict.
    fn wait_remote(&self) {
        use std::sync::atomic::Ordering;
        // Start fence, once per execution: no rank may begin probing for
        // termination until every rank has seeded its graph and entered
        // the wait — otherwise an early-starting coordinator could observe
        // a not-yet-seeded (and therefore idle) peer and declare a finish
        // that never happened.
        if !self.wait_fenced.swap(true, Ordering::SeqCst) {
            self.ctx.fabric.barrier();
        }
        let give_up = self.deadline.map(|d| Instant::now() + d);
        loop {
            if self.ctx.fabric.remote_done() {
                return;
            }
            self.ctx.fabric.drive_termination();
            if let Some(t) = give_up {
                if Instant::now() >= t {
                    self.ctx.fabric.count_deadline_miss();
                    self.ctx.fabric.record_error(CommError {
                        kind: CommErrorKind::DeadlineMissed,
                        from: None,
                        to: None,
                        handler: None,
                        seq: None,
                        detail: format!(
                            "no distributed termination within {:?} \
                             ({} packets in flight locally)",
                            self.deadline.unwrap(),
                            self.ctx.fabric.packets_in_flight()
                        ),
                    });
                    return;
                }
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Wait for quiescence, shut everything down, and report.
    pub fn finish(self) -> ExecReport {
        self.wait();
        let elapsed = self.started.elapsed();
        self.ctx.fabric.shutdown_all();
        for t in self.comm_threads {
            t.join().expect("comm thread panicked");
        }
        for pool in self.ctx.pools.get().expect("pools missing") {
            pool.shutdown();
        }
        let per_node: Vec<(&'static str, u64)> = self
            .graph
            .nodes()
            .iter()
            .map(|n| (n.node_name(), n.tasks_executed()))
            .collect();
        let tasks = per_node.iter().map(|(_, t)| t).sum();
        // Quiescent but incomplete matching entries = tasks that will never
        // fire. Collecting them here costs nothing on the hot path and
        // turns a would-be silent hang into a structured report.
        let stuck = self
            .graph
            .nodes()
            .iter()
            .flat_map(|n| n.pending_detail())
            .collect();
        ExecReport {
            elapsed,
            comm: self.ctx.fabric.stats().snapshot(),
            tasks,
            per_node,
            trace: self.ctx.trace.as_ref().map(|t| t.take()),
            telemetry: self.ctx.fabric.telemetry().snapshot(),
            violations: self.ctx.sanitizer.take(),
            stuck,
            comm_errors: self.ctx.fabric.take_errors(),
            recovery_events: self.ctx.fabric.take_recovery_events(),
        }
    }
}

/// Compose and persist one recovery snapshot for rank `r`: the comm-layer
/// section first, then one length-prefixed matching-table section per
/// node. Returns whether the snapshot was committed; failures are recorded
/// as structured TTG047 diagnostics, never panics.
fn take_snapshot(ctx: &Arc<RuntimeCtx>, r: usize) -> bool {
    let nodes = ctx.nodes.get().expect("graph not attached");
    let mut blob = WriteBuf::new();
    let mut comm = WriteBuf::new();
    ctx.fabric.export_rank_comm(r, &mut comm);
    blob.put_len_bytes(comm.as_slice());
    blob.put_u32(nodes.len() as u32);
    for node in nodes {
        let mut sect = WriteBuf::new();
        if let Err(e) = node.export_rank(r, &mut sect) {
            ctx.fabric.record_error(CommError {
                kind: CommErrorKind::SnapshotFailed,
                from: None,
                to: Some(r),
                handler: Some(node.node_id()),
                seq: None,
                detail: format!("matching-table export of {} failed: {e}", node.node_name()),
            });
            return false;
        }
        blob.put_len_bytes(sect.as_slice());
    }
    ctx.fabric.commit_snapshot(r, blob.as_slice()).is_ok()
}

/// Restore rank `r` in place: re-import its matching tables (or clear
/// them when no snapshot was ever committed), then restore the comm layer
/// and replay logged sends. Failures become structured TTG048
/// diagnostics and leave the rank dead — degraded, not panicked.
fn recover_rank(ctx: &Arc<RuntimeCtx>, r: usize) {
    let nodes = ctx.nodes.get().expect("graph not attached");
    let blob = ctx.fabric.load_snapshot(r);
    let result: Result<(), WireError> = (|| match &blob {
        Some(bytes) => {
            let mut rd = ReadBuf::new(bytes);
            let comm = rd.get_len_bytes()?;
            let n_nodes = rd.get_u32()? as usize;
            if n_nodes != nodes.len() {
                return Err(WireError::new(format!(
                    "snapshot names {n_nodes} nodes but the graph has {}",
                    nodes.len()
                )));
            }
            for node in nodes {
                let sect = rd.get_len_bytes()?;
                node.import_rank(r, &mut ReadBuf::new(sect))?;
            }
            ctx.fabric.restore_rank_comm(r, Some(comm))
        }
        None => {
            // No snapshot yet: restore to empty. The sender-side replay
            // logs cover the run from its first message, so this is pure
            // message-logging recovery.
            for node in nodes {
                node.clear_rank(r);
            }
            ctx.fabric.restore_rank_comm(r, None)
        }
    })();
    if let Err(e) = result {
        ctx.fabric.record_error(CommError {
            kind: CommErrorKind::RecoveryFailed,
            from: None,
            to: Some(r),
            handler: None,
            seq: None,
            detail: format!("restore of rank {r} failed: {e}"),
        });
    }
}
