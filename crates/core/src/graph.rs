//! Graph construction: `make_tt` and template-task handles.

use std::marker::PhantomData;
use std::sync::Arc;

use crate::ctx::RuntimeCtx;
use crate::inspect::MutationError;
use crate::node::{AnyNode, NodeInner, ReducerSpec};
use crate::outs::{InRef, Outs};
use crate::tuples::{EdgeList, OutEdgeList, ValueAt};
use crate::types::{ErasedVal, Key};

/// Builder collecting template tasks into a [`Graph`].
#[derive(Default)]
pub struct GraphBuilder {
    nodes: Vec<Arc<dyn AnyNode>>,
}

impl GraphBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a template task from a task body, input edges, output edges,
    /// and a keymap assigning task IDs to ranks (paper §II: "the process on
    /// which a given task will be executed is specified by a user-defined
    /// function mapping task IDs to process ranks").
    ///
    /// The body receives the task ID, the tuple of input values, and the
    /// typed output terminals.
    pub fn make_tt<K, IS, OS, KM, F>(
        &mut self,
        name: &'static str,
        inputs: IS,
        outputs: OS,
        keymap: KM,
        body: F,
    ) -> TtHandle<K, IS::Values, OS::Terms>
    where
        K: Key,
        IS: EdgeList<K>,
        OS: OutEdgeList,
        KM: Fn(&K) -> usize + Send + Sync + 'static,
        F: Fn(&K, IS::Values, &Outs<'_, OS::Terms>) + Send + Sync + 'static,
    {
        let id = self.nodes.len() as u32;
        let node = Arc::new(NodeInner::new(id, name, inputs.metas(), Arc::new(keymap)));
        node.set_topology(inputs.decls(), outputs.decls());
        inputs.connect(&node);
        let terms = outputs.terms();
        node.set_invoke(Arc::new(
            move |k: K, vals: Vec<ErasedVal>, task_id: u64, rank: usize, ctx: &Arc<RuntimeCtx>| {
                let values = IS::extract(vals, rank, ctx);
                let outs = Outs::new(&terms, task_id, rank, ctx);
                body(&k, values, &outs);
            },
        ));
        self.nodes.push(Arc::clone(&node) as Arc<dyn AnyNode>);
        TtHandle {
            node,
            _ph: PhantomData,
        }
    }

    /// Finish construction.
    pub fn build(self) -> Graph {
        Graph {
            nodes: self.nodes.into(),
        }
    }

    /// Number of template tasks added so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no template task was added yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// An immutable template task graph, ready for execution.
#[derive(Clone)]
pub struct Graph {
    pub(crate) nodes: Arc<[Arc<dyn AnyNode>]>,
}

impl Graph {
    /// Template tasks in the graph.
    pub fn nodes(&self) -> &[Arc<dyn AnyNode>] {
        &self.nodes
    }
}

/// Typed handle on a template task.
///
/// `VS` is the tuple of input value types, `TS` the tuple of output
/// terminals; both are compile-time artifacts of `make_tt`.
pub struct TtHandle<K: Key, VS, TS> {
    node: Arc<NodeInner<K>>,
    _ph: PhantomData<fn() -> (VS, TS)>,
}

impl<K: Key, VS, TS> Clone for TtHandle<K, VS, TS> {
    fn clone(&self) -> Self {
        TtHandle {
            node: Arc::clone(&self.node),
            _ph: PhantomData,
        }
    }
}

impl<K: Key, VS: 'static, TS> TtHandle<K, VS, TS> {
    /// Node id within the graph.
    pub fn node_id(&self) -> u32 {
        self.node.id
    }

    /// Install a streaming reducer on input terminal `I` (paper §II-B).
    ///
    /// Each task will receive, on that terminal, the fold of `op` over the
    /// message stream for its task ID. `size` fixes the expected stream
    /// length for every key; `None` makes streams unbounded — close them
    /// with [`InRef::set_size`]/[`InRef::finalize`].
    ///
    /// Fails with [`MutationError`] (diagnostic `TTG010`) once an executor
    /// has attached the graph: node maps are frozen at attach.
    pub fn set_input_reducer<const I: usize>(
        &self,
        op: impl Fn(&mut <VS as ValueAt<I>>::V, <VS as ValueAt<I>>::V) + Send + Sync + 'static,
        size: Option<usize>,
    ) -> Result<(), MutationError>
    where
        VS: ValueAt<I>,
    {
        type V<VS, const I: usize> = <VS as ValueAt<I>>::V;
        let init = Arc::new(|ev: ErasedVal| {
            let (v, _copied) = ev.take::<V<VS, I>>().expect("reducer init type mismatch");
            Box::new(v) as Box<dyn std::any::Any + Send>
        });
        let fold = Arc::new(
            move |acc: &mut Box<dyn std::any::Any + Send>, ev: ErasedVal| {
                let a = acc
                    .downcast_mut::<V<VS, I>>()
                    .expect("reducer acc type mismatch");
                let (v, _copied) = ev.take::<V<VS, I>>().expect("reducer type mismatch");
                op(a, v);
            },
        );
        self.node.set_reducer(
            I,
            ReducerSpec {
                init,
                op: fold,
                default_size: size,
            },
        )
    }

    /// Reference to input terminal `I`, for seeding and stream control.
    pub fn in_ref<const I: usize>(&self) -> InRef<K, <VS as ValueAt<I>>::V>
    where
        VS: ValueAt<I>,
    {
        InRef::new(Arc::clone(&self.node), I as u16)
    }

    /// Replace the keymap. Fails with `TTG010` after executor attach.
    pub fn set_keymap(
        &self,
        f: impl Fn(&K) -> usize + Send + Sync + 'static,
    ) -> Result<(), MutationError> {
        self.node.set_keymap(Arc::new(f))
    }

    /// Install a priority map: larger values are scheduled earlier on
    /// backends that honor priorities (paper §II, new feature).
    /// Fails with `TTG010` after executor attach.
    pub fn set_priority_map(
        &self,
        f: impl Fn(&K) -> i32 + Send + Sync + 'static,
    ) -> Result<(), MutationError> {
        self.node.set_priomap(Arc::new(f))
    }

    /// Install a cost model (ns per task) used by trace-based projection
    /// instead of measured durations. Fails with `TTG010` after executor
    /// attach.
    pub fn set_cost_model(
        &self,
        f: impl Fn(&K) -> u64 + Send + Sync + 'static,
    ) -> Result<(), MutationError> {
        self.node.set_costmap(Arc::new(f))
    }

    /// Register sample keys for the static verifier's keymap probing
    /// (diagnostics TTG004/TTG005). The keys are stored but only evaluated
    /// when a verifier runs, so this is cheap to call unconditionally.
    pub fn set_check_samples(&self, keys: Vec<K>) {
        self.node.set_check_samples(keys);
    }

    /// Tasks of this template executed so far.
    pub fn tasks_executed(&self) -> u64 {
        use crate::node::AnyNode as _;
        self.node.tasks_executed()
    }
}
