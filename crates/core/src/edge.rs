//! Typed edges, consumer ports, and output terminals.
//!
//! An [`Edge<K, V>`] encodes one possible flow of messages carrying task IDs
//! of type `K` and data of type `V` (paper §II). Producer-side output
//! terminals route values to every consumer port registered on the edge;
//! the port implements destination resolution (keymap), the local-pass
//! semantics of the active backend, and the wire protocols (inline archive,
//! optimized broadcast, split-metadata RMA).

use std::sync::{Arc, Weak};

use parking_lot::RwLock;

use ttg_comm::{WireKind, WriteBuf};

use crate::ctx::RuntimeCtx;
use crate::node::{
    am_header, NodeInner, MSG_DATA_INLINE, MSG_DATA_SPLITMD, MSG_FINALIZE, MSG_SET_SIZE,
};
use crate::trace::Dep;
use crate::types::{Data, EncodeCache, ErasedVal, FanoutVal, Key, LocalPass};

/// A consumer endpoint of an edge: one input terminal of one template task.
pub trait ConsumerPort<K: Key, V: Data>: Send + Sync {
    /// Route `v` to the tasks identified by `keys`. The producer-side
    /// terminal decides the ownership mode: single-port sends arrive
    /// `Owned` (moved end to end), multi-port broadcasts arrive `Shared`
    /// with a serialize-once cache spanning the ports.
    fn route(
        &self,
        keys: &[K],
        v: FanoutVal<V>,
        from_task: u64,
        src_rank: usize,
        ctx: &Arc<RuntimeCtx>,
    );
    /// Set the expected stream size for key `k` on this terminal.
    fn set_stream_size(&self, k: &K, n: usize, src_rank: usize, ctx: &Arc<RuntimeCtx>);
    /// Finalize the stream for key `k` on this terminal.
    fn finalize(&self, k: &K, src_rank: usize, ctx: &Arc<RuntimeCtx>);
    /// Directly insert a seed value (main-thread injection, no provenance).
    fn seed(&self, k: K, v: V, ctx: &Arc<RuntimeCtx>);
}

/// Process-global edge id allocator: gives every edge a stable identity the
/// static verifier can correlate across input and output terminal lists.
static NEXT_EDGE_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// Shared state of an edge: the registered consumer ports.
pub struct EdgeState<K: Key, V: Data> {
    id: u64,
    name: String,
    consumers: RwLock<Vec<Arc<dyn ConsumerPort<K, V>>>>,
}

/// A strongly typed edge. Cloning shares the underlying state, so the same
/// edge value can be passed as an output of one `make_tt` and an input of
/// another.
pub struct Edge<K: Key, V: Data> {
    state: Arc<EdgeState<K, V>>,
}

impl<K: Key, V: Data> Clone for Edge<K, V> {
    fn clone(&self) -> Self {
        Edge {
            state: Arc::clone(&self.state),
        }
    }
}

impl<K: Key, V: Data> Edge<K, V> {
    /// Create a named edge.
    pub fn new(name: impl Into<String>) -> Self {
        Edge {
            state: Arc::new(EdgeState {
                id: NEXT_EDGE_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
                name: name.into(),
                consumers: RwLock::new(Vec::new()),
            }),
        }
    }

    /// Edge name (diagnostics).
    pub fn name(&self) -> &str {
        &self.state.name
    }

    /// Process-unique edge id: clones of this edge share it.
    pub fn id(&self) -> u64 {
        self.state.id
    }

    /// Identity declaration recorded on node terminal lists by `make_tt`.
    pub fn decl(&self) -> crate::inspect::EdgeDecl {
        crate::inspect::EdgeDecl {
            edge_id: self.state.id,
            name: self.state.name.clone(),
        }
    }

    /// Register a consumer port (done by `make_tt` for each input edge).
    pub fn add_consumer(&self, port: Arc<dyn ConsumerPort<K, V>>) {
        self.state.consumers.write().push(port);
    }

    /// Number of consumer terminals attached.
    pub fn fanout(&self) -> usize {
        self.state.consumers.read().len()
    }

    pub(crate) fn with_consumers<R>(
        &self,
        f: impl FnOnce(&[Arc<dyn ConsumerPort<K, V>>]) -> R,
    ) -> R {
        f(&self.state.consumers.read())
    }
}

impl<K: Key, V: Data> Default for Edge<K, V> {
    fn default() -> Self {
        Edge::new("edge")
    }
}

/// The concrete consumer port: routes values into a `NodeInner<K>` input
/// terminal, applying backend data-passing semantics and wire protocols.
pub struct PortImpl<K: Key, V: Data> {
    node: Weak<NodeInner<K>>,
    terminal: u16,
    _ph: std::marker::PhantomData<fn() -> V>,
}

impl<K: Key, V: Data> Clone for PortImpl<K, V> {
    fn clone(&self) -> Self {
        PortImpl {
            node: Weak::clone(&self.node),
            terminal: self.terminal,
            _ph: std::marker::PhantomData,
        }
    }
}

impl<K: Key, V: Data> PortImpl<K, V> {
    /// Create a port for input `terminal` of `node`.
    pub fn new(node: Weak<NodeInner<K>>, terminal: u16) -> Self {
        PortImpl {
            node,
            terminal,
            _ph: std::marker::PhantomData,
        }
    }

    fn node(&self) -> Arc<NodeInner<K>> {
        self.node.upgrade().expect("graph dropped while routing")
    }

    /// Deliver to rank-local consumers honoring the backend's local-pass
    /// mode. `v` is consumed; it is cloned only as required.
    fn deliver_local(
        &self,
        node: &Arc<NodeInner<K>>,
        rank: usize,
        keys: &[&K],
        v: FanoutVal<V>,
        from_task: u64,
        src_rank: usize,
        ctx: &Arc<RuntimeCtx>,
    ) {
        let dep = Dep {
            from_task,
            bytes: 0,
            src_rank,
            msg: 0,
        };
        let t = self.terminal as usize;
        match ctx.backend.local_pass {
            LocalPass::Copy => {
                // MADNESS-like: every consumer gets a private deep copy.
                // Even the last key, which could take the original by move,
                // is counted as a copy to model always-copy semantics.
                for &k in keys {
                    ctx.fabric.count_data_copy();
                    ctx.metrics.count_local_copy(rank);
                    node.insert(
                        rank,
                        t,
                        k.clone(),
                        ErasedVal::erase(v.get().clone()),
                        dep,
                        ctx,
                    );
                }
            }
            LocalPass::Share => {
                // PaRSEC-like: the runtime owns the datum; consumers share
                // an Arc and copy-on-write only if they mutate while shared.
                match v {
                    FanoutVal::Owned(v) if keys.len() == 1 => {
                        ctx.metrics.count_local_shared(rank);
                        node.insert(rank, t, keys[0].clone(), ErasedVal::erase(v), dep, ctx);
                    }
                    FanoutVal::Owned(v) => {
                        // Erase once into a shared handle; every consumer
                        // gets the same allocation.
                        let arc: Arc<V> = Arc::new(v);
                        ctx.metrics.count_value_shared(rank);
                        for &k in keys {
                            ctx.metrics.count_local_shared(rank);
                            node.insert(
                                rank,
                                t,
                                k.clone(),
                                ErasedVal::erase_shared(Arc::clone(&arc)),
                                dep,
                                ctx,
                            );
                        }
                    }
                    FanoutVal::Shared(arc, _) => {
                        // Already shared across the broadcast's ports: hand
                        // the same allocation to this port's consumers too.
                        for &k in keys {
                            ctx.metrics.count_local_shared(rank);
                            node.insert(
                                rank,
                                t,
                                k.clone(),
                                ErasedVal::erase_shared(Arc::clone(&arc)),
                                dep,
                                ctx,
                            );
                        }
                    }
                }
            }
        }
    }

    /// Send to one remote rank using the inline (archive/trivial) protocol.
    fn send_inline(
        &self,
        node: &NodeInner<K>,
        dest: usize,
        keys: &[&K],
        value_bytes: &[u8],
        from_task: u64,
        src_rank: usize,
        ctx: &Arc<RuntimeCtx>,
    ) {
        // header(11) + src_rank(8) + key count(4) + keys + value.
        let key_bytes: usize = keys.iter().map(|k| k.wire_size()).sum();
        let mut b = WriteBuf::pooled(23 + key_bytes + value_bytes.len());
        am_header(&mut b, from_task, MSG_DATA_INLINE, self.terminal);
        b.put_u64(src_rank as u64);
        b.put_u32(keys.len() as u32);
        for k in keys {
            k.encode(&mut b);
        }
        b.put_bytes(value_bytes);
        if let Err(e) = ctx.fabric.send_am(src_rank, dest, node.id, b.into_vec()) {
            ctx.fabric.record_error(e.into());
        }
    }
}

impl<K: Key, V: Data> ConsumerPort<K, V> for PortImpl<K, V> {
    fn route(
        &self,
        keys: &[K],
        v: FanoutVal<V>,
        from_task: u64,
        src_rank: usize,
        ctx: &Arc<RuntimeCtx>,
    ) {
        let node = self.node();
        let n_ranks = ctx.n_ranks();

        // Group destination keys by owner rank in a single pass:
        // `slot_of[rank]` maps a rank to its group slot, so grouping costs
        // O(keys + ranks) instead of the old O(keys × ranks) scan — and keys
        // are only borrowed, never cloned, on this path.
        let mut slot_of: Vec<usize> = vec![usize::MAX; n_ranks];
        let mut remote: Vec<(usize, Vec<&K>)> = Vec::new();
        let mut local: Vec<&K> = Vec::new();
        for k in keys {
            let r = node.owner(k, n_ranks);
            if r == src_rank {
                local.push(k);
            } else if slot_of[r] == usize::MAX {
                slot_of[r] = remote.len();
                remote.push((r, vec![k]));
            } else {
                remote[slot_of[r]].1.push(k);
            }
        }

        // Remote ranks first (they borrow `v`), local delivery consumes it.
        if !remote.is_empty() {
            // Savings of the per-rank protocols over the naive one: the
            // naive path serializes and sends once per destination *key*,
            // the optimized paths once per destination *rank*.
            let remote_keys: usize = remote.iter().map(|(_, ks)| ks.len()).sum();
            let sends_saved = (remote_keys - remote.len()) as u64;
            let use_splitmd = V::KIND == WireKind::SplitMd && ctx.backend.supports_splitmd;
            if use_splitmd {
                // Stage 1: register the contiguous payload once for all
                // destination ranks, send only metadata eagerly. A shared
                // broadcast builds the payload once *per broadcast*: the
                // first port freezes it in the cache, later ports reuse it.
                let payload: Arc<Vec<u8>> = match &v {
                    FanoutVal::Shared(x, cache) => cache.payload(|| {
                        ctx.fabric.count_serialization();
                        x.split_payload().unwrap_or_default()
                    }),
                    FanoutVal::Owned(x) => {
                        ctx.fabric.count_serialization();
                        Arc::new(x.split_payload().unwrap_or_default())
                    }
                };
                let payload_len = payload.len() as u64;
                let region = ctx
                    .fabric
                    .register_region(src_rank, payload, remote.len(), None);
                for (dest, ks) in &remote {
                    // header(11) + src_rank(8) + region(8) + src_rank(8)
                    // + key count(4) + keys + metadata (sized by encode).
                    let key_bytes: usize = ks.iter().map(|k| k.wire_size()).sum();
                    let mut b = WriteBuf::pooled(39 + key_bytes);
                    am_header(&mut b, from_task, MSG_DATA_SPLITMD, self.terminal);
                    b.put_u64(src_rank as u64);
                    b.put_u64(region);
                    b.put_u64(src_rank as u64);
                    b.put_u32(ks.len() as u32);
                    for k in ks {
                        k.encode(&mut b);
                    }
                    v.get().split_encode_md(&mut b);
                    if let Err(e) = ctx.fabric.send_am(src_rank, *dest, node.id, b.into_vec()) {
                        ctx.fabric.record_error(e.into());
                    }
                }
                if sends_saved > 0 {
                    ctx.fabric
                        .count_broadcast_dedup(sends_saved, sends_saved * payload_len);
                }
            } else if ctx.backend.optimized_broadcast {
                // Serialize the value once per *broadcast*, reuse the frozen
                // slab for every rank and every port (paper §II-A broadcast
                // optimization, extended across consumer ports).
                let value_bytes: Arc<Vec<u8>> = match &v {
                    FanoutVal::Shared(x, cache) => cache.bytes(|| {
                        ctx.fabric.count_serialization();
                        ttg_comm::to_bytes(&**x)
                    }),
                    FanoutVal::Owned(x) => {
                        ctx.fabric.count_serialization();
                        Arc::new(ttg_comm::to_bytes(x))
                    }
                };
                for (dest, ks) in &remote {
                    self.send_inline(&node, *dest, ks, &value_bytes, from_task, src_rank, ctx);
                }
                if sends_saved > 0 {
                    ctx.fabric
                        .count_broadcast_dedup(sends_saved, sends_saved * value_bytes.len() as u64);
                }
            } else {
                // Naive path: one serialization (and one AM) per key.
                for (dest, ks) in &remote {
                    for &k in ks {
                        let value_bytes = ttg_comm::to_bytes(v.get());
                        ctx.fabric.count_serialization();
                        self.send_inline(
                            &node,
                            *dest,
                            &[k],
                            &value_bytes,
                            from_task,
                            src_rank,
                            ctx,
                        );
                    }
                }
            }
        }

        if !local.is_empty() {
            if ctx.fabric.wire_local_sends() {
                // Recovery is on: loopback sends must be sequenced and
                // replay-logged on the diagonal link, so serialize through
                // the inline wire protocol instead of inserting directly.
                // A shared broadcast reuses the frozen slab across ports.
                let value_bytes: Arc<Vec<u8>> = match &v {
                    FanoutVal::Shared(x, cache) => cache.bytes(|| {
                        ctx.fabric.count_serialization();
                        ttg_comm::to_bytes(&**x)
                    }),
                    FanoutVal::Owned(x) => {
                        ctx.fabric.count_serialization();
                        Arc::new(ttg_comm::to_bytes(x))
                    }
                };
                self.send_inline(&node, src_rank, &local, &value_bytes, from_task, src_rank, ctx);
            } else {
                self.deliver_local(&node, src_rank, &local, v, from_task, src_rank, ctx);
            }
        }
    }

    fn set_stream_size(&self, k: &K, n: usize, src_rank: usize, ctx: &Arc<RuntimeCtx>) {
        port_set_stream_size(&self.node(), self.terminal, k, n, src_rank, ctx);
    }

    fn finalize(&self, k: &K, src_rank: usize, ctx: &Arc<RuntimeCtx>) {
        port_finalize(&self.node(), self.terminal, k, src_rank, ctx);
    }

    fn seed(&self, k: K, v: V, ctx: &Arc<RuntimeCtx>) {
        port_seed(&self.node(), self.terminal, k, v, ctx);
    }
}

// Port operations shared between edge consumer ports (which hold a `Weak`
// node pointer to break the node → edge → port cycle) and [`InRef`] handles
// (which hold a strong `Arc` so the seeding hot path skips the
// upgrade/downgrade traffic entirely).

pub(crate) fn port_set_stream_size<K: Key>(
    node: &Arc<NodeInner<K>>,
    terminal: u16,
    k: &K,
    n: usize,
    src_rank: usize,
    ctx: &Arc<RuntimeCtx>,
) {
    let owner = node.owner(k, ctx.n_ranks());
    if owner == src_rank && !ctx.fabric.wire_local_sends() {
        node.set_stream_size(owner, terminal as usize, k.clone(), n, ctx);
    } else {
        // header(11) + key + size(8).
        let mut b = WriteBuf::pooled(19 + k.wire_size());
        am_header(&mut b, 0, MSG_SET_SIZE, terminal);
        k.encode(&mut b);
        b.put_u64(n as u64);
        if let Err(e) = ctx.fabric.send_am(src_rank, owner, node.id, b.into_vec()) {
            ctx.fabric.record_error(e.into());
        }
    }
}

pub(crate) fn port_finalize<K: Key>(
    node: &Arc<NodeInner<K>>,
    terminal: u16,
    k: &K,
    src_rank: usize,
    ctx: &Arc<RuntimeCtx>,
) {
    let owner = node.owner(k, ctx.n_ranks());
    if owner == src_rank && !ctx.fabric.wire_local_sends() {
        node.finalize_stream(owner, terminal as usize, k.clone(), ctx);
    } else {
        // header(11) + key.
        let mut b = WriteBuf::pooled(11 + k.wire_size());
        am_header(&mut b, 0, MSG_FINALIZE, terminal);
        k.encode(&mut b);
        if let Err(e) = ctx.fabric.send_am(src_rank, owner, node.id, b.into_vec()) {
            ctx.fabric.record_error(e.into());
        }
    }
}

pub(crate) fn port_seed<K: Key, V: Data>(
    node: &Arc<NodeInner<K>>,
    terminal: u16,
    k: K,
    v: V,
    ctx: &Arc<RuntimeCtx>,
) {
    let owner = node.owner(&k, ctx.n_ranks());
    // SPMD seeding: in a multi-process job every process runs the same
    // seed loop, and each keeps only the keys its own rank owns — the
    // other processes seed theirs themselves.
    if !ctx.is_local(owner) {
        return;
    }
    if ctx.fabric.wire_local_sends() {
        // Seeds are logical messages too: under recovery they must be
        // sequenced on the owner's diagonal link so an empty-snapshot
        // restore can re-drive them from the replay log.
        let value_bytes = ttg_comm::to_bytes(&v);
        ctx.fabric.count_serialization();
        let mut b = WriteBuf::pooled(23 + k.wire_size() + value_bytes.len());
        am_header(&mut b, 0, MSG_DATA_INLINE, terminal);
        b.put_u64(owner as u64);
        b.put_u32(1);
        k.encode(&mut b);
        b.put_bytes(&value_bytes);
        if let Err(e) = ctx.fabric.send_am(owner, owner, node.id, b.into_vec()) {
            ctx.fabric.record_error(e.into());
        }
        return;
    }
    node.insert(
        owner,
        terminal as usize,
        k,
        ErasedVal::erase(v),
        Dep {
            from_task: 0,
            bytes: 0,
            src_rank: owner,
            msg: 0,
        },
        ctx,
    );
}

/// Drop repeated keys from a broadcast key list, preserving first-occurrence
/// order. Returns `None` when the list is already duplicate-free — the
/// overwhelmingly common case, which must not allocate. Small lists are
/// scanned quadratically (cheaper than hashing); larger ones go through a
/// `HashSet`.
fn dedupe_keys<K: Key>(keys: &[K]) -> Option<Vec<K>> {
    const SCAN_CAP: usize = 8;
    if keys.len() <= SCAN_CAP {
        if !keys.iter().enumerate().any(|(i, k)| keys[..i].contains(k)) {
            return None;
        }
        let mut out: Vec<K> = Vec::with_capacity(keys.len());
        for k in keys {
            if !out.contains(k) {
                out.push(k.clone());
            }
        }
        Some(out)
    } else {
        let mut seen = std::collections::HashSet::with_capacity(keys.len());
        if keys.iter().all(|k| seen.insert(k)) {
            return None;
        }
        seen.clear();
        Some(keys.iter().filter(|k| seen.insert(*k)).cloned().collect())
    }
}

/// Producer-side handle on an edge: the output terminal of a template task.
pub struct OutTerm<K: Key, V: Data> {
    edge: Edge<K, V>,
}

impl<K: Key, V: Data> OutTerm<K, V> {
    /// Wrap an edge as an output terminal.
    pub fn new(edge: Edge<K, V>) -> Self {
        OutTerm { edge }
    }

    /// Send `v` to the single task `k` on every consumer of the edge.
    pub fn send_one(&self, k: K, v: V, from_task: u64, src_rank: usize, ctx: &Arc<RuntimeCtx>) {
        self.broadcast_keys(std::slice::from_ref(&k), v, from_task, src_rank, ctx);
    }

    /// Send `v` to every task in `keys` on every consumer of the edge
    /// (`ttg::broadcast`, Fig. 2b).
    ///
    /// Repeated keys are deduplicated before routing: a duplicated key must
    /// not double-deliver (exactly-once matching would reject it) or
    /// double-count broadcast bytes. A multi-port broadcast erases the value
    /// once into a shared handle instead of deep-cloning it per port.
    pub fn broadcast_keys(
        &self,
        keys: &[K],
        v: V,
        from_task: u64,
        src_rank: usize,
        ctx: &Arc<RuntimeCtx>,
    ) {
        if keys.is_empty() {
            return;
        }
        let deduped = dedupe_keys(keys);
        let keys: &[K] = deduped.as_deref().unwrap_or(keys);
        self.edge.with_consumers(|ports| {
            if ports.is_empty() {
                // No consumer terminal: the value has nowhere to go. Count
                // the drop so the sanitizer and telemetry can report it
                // instead of losing the data invisibly (diagnostic TTG031;
                // the static verifier flags the same shape as TTG002).
                ctx.metrics.count_dropped_sends(src_rank, keys.len() as u64);
                #[cfg(feature = "checked")]
                ctx.sanitizer
                    .record(crate::inspect::Violation::DroppedSend {
                        edge: self.edge.name().to_string(),
                        keys: keys.len(),
                    });
                return;
            }
            if ports.len() == 1 {
                // Single consumer port: keep exclusive ownership so the
                // value can move end to end.
                ports[0].route(keys, FanoutVal::Owned(v), from_task, src_rank, ctx);
            } else {
                // Erase once, share across every port: local consumers all
                // alias the same allocation, remote fan-out serializes once
                // per broadcast through the attached cache.
                let arc = Arc::new(v);
                let cache = Arc::new(EncodeCache::default());
                ctx.metrics.count_value_shared(src_rank);
                for port in ports {
                    port.route(
                        keys,
                        FanoutVal::Shared(Arc::clone(&arc), Arc::clone(&cache)),
                        from_task,
                        src_rank,
                        ctx,
                    );
                }
            }
        });
    }

    /// The underlying edge.
    pub fn edge(&self) -> &Edge<K, V> {
        &self.edge
    }
}
