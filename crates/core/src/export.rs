//! Chrome trace-event export of an execution.
//!
//! Bridges the runtime's [`TaskEvent`] trace (which carries durations and
//! dependencies but no absolute timestamps) into the telemetry crate's
//! [`ChromeTraceBuilder`]. Tasks are laid out on a synthetic timeline by a
//! greedy list schedule — per rank, `workers_per_rank` lanes, each task
//! starting no earlier than its dependencies finish — which reconstructs a
//! plausible Gantt chart from the dependency structure alone. Live span
//! events recorded by the `telemetry` feature (task spans, comm instants)
//! can be merged on top by the caller via [`chrome_trace`].

use std::collections::HashMap;

use ttg_telemetry::{ChromeTraceBuilder, TaskSlice};

use crate::trace::TaskEvent;

/// Lay `events` out on a synthetic timeline: per rank, `workers_per_rank`
/// lanes; each task starts at the later of (a) the finish time of its
/// latest dependency and (b) the earliest lane availability on its rank.
/// Returns slices suitable for [`ChromeTraceBuilder::add_task_slice`].
pub fn layout_task_slices(events: &[TaskEvent], workers_per_rank: usize) -> Vec<TaskSlice> {
    let lanes_per_rank = workers_per_rank.max(1);
    // finish[task id] = synthetic completion time.
    let mut finish: HashMap<u64, u64> = HashMap::new();
    // lane_free[rank] = per-lane next-free time.
    let mut lane_free: HashMap<usize, Vec<u64>> = HashMap::new();
    let mut sorted: Vec<&TaskEvent> = events.iter().collect();
    // Task ids are allocated at launch, so id order is a valid topological
    // order of the discovered DAG.
    sorted.sort_by_key(|e| e.id);

    let mut out = Vec::with_capacity(sorted.len());
    for ev in sorted {
        let dep_ready = ev
            .deps
            .iter()
            .filter(|d| d.from_task != 0)
            .filter_map(|d| finish.get(&d.from_task).copied())
            .max()
            .unwrap_or(0);
        let lanes = lane_free
            .entry(ev.rank)
            .or_insert_with(|| vec![0; lanes_per_rank]);
        let (lane, free) = lanes
            .iter()
            .copied()
            .enumerate()
            .min_by_key(|&(_, t)| t)
            .expect("at least one lane");
        let start = dep_ready.max(free);
        let dur = ev.cost_ns.max(1);
        lanes[lane] = start + dur;
        finish.insert(ev.id, start + dur);
        out.push(TaskSlice {
            name: format!("{}#{}", ev.name, ev.id),
            rank: ev.rank as u32,
            tid: lane as u32,
            start_ns: start,
            dur_ns: dur,
            args: [
                Some(("node", ev.node as u64)),
                Some(("deps", ev.deps.len() as u64)),
            ],
        });
    }
    out
}

/// Build a complete Chrome trace-event JSON document from a task trace,
/// merging any span/instant events recorded live by the telemetry layer
/// (drains the global span buffers, so spans appear in one export only).
pub fn chrome_trace(events: &[TaskEvent], workers_per_rank: usize) -> String {
    let mut b = ChromeTraceBuilder::new();
    b.add_thread_names(ttg_telemetry::thread_names());
    b.add_events(ttg_telemetry::drain_events());
    for s in layout_task_slices(events, workers_per_rank) {
        b.add_task_slice(s);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Dep;

    fn ev(id: u64, rank: usize, cost: u64, deps: &[u64]) -> TaskEvent {
        TaskEvent {
            id,
            node: 0,
            name: "t",
            rank,
            cost_ns: cost,
            priority: 0,
            deps: deps
                .iter()
                .map(|&d| Dep {
                    from_task: d,
                    bytes: 0,
                    src_rank: 0,
                    msg: 0,
                })
                .collect(),
        }
    }

    #[test]
    fn layout_respects_dependencies_and_lanes() {
        // 1 and 2 are independent on rank 0 (2 lanes → parallel); 3 depends
        // on both and must start after the later one finishes.
        let events = vec![
            ev(1, 0, 100, &[]),
            ev(2, 0, 300, &[]),
            ev(3, 0, 50, &[1, 2]),
        ];
        let slices = layout_task_slices(&events, 2);
        assert_eq!(slices.len(), 3);
        assert_eq!(slices[0].start_ns, 0);
        assert_eq!(slices[1].start_ns, 0);
        assert_ne!(
            (slices[0].rank, slices[0].tid),
            (slices[1].rank, slices[1].tid),
            "independent tasks share a lane"
        );
        assert_eq!(slices[2].start_ns, 300);
    }

    #[test]
    fn single_lane_serializes_per_rank() {
        let events = vec![ev(1, 1, 100, &[]), ev(2, 1, 100, &[])];
        let slices = layout_task_slices(&events, 1);
        assert_eq!(slices[0].start_ns + slices[0].dur_ns, slices[1].start_ns);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_balanced_pairs() {
        let events = vec![ev(1, 0, 100, &[]), ev(2, 1, 200, &[1])];
        let json = chrome_trace(&events, 2);
        ttg_telemetry::json::validate(&json).expect("export must be valid JSON");
        assert_eq!(
            json.matches("\"ph\":\"B\"").count(),
            json.matches("\"ph\":\"E\"").count()
        );
        assert!(json.contains("\"name\":\"rank 1\""));
    }
}
