//! End-to-end semantic tests of the TTG model: message matching, broadcast,
//! streaming terminals, protocols, backends, and data-dependent task flow.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ttg_comm::{ReadBuf, Wire, WireError, WireKind, WriteBuf};
use ttg_core::prelude::*;
use ttg_core::LocalPass;
use ttg_runtime::SchedulerKind;

fn parsec_like() -> BackendSpec {
    BackendSpec::default_spec()
}

fn madness_like() -> BackendSpec {
    BackendSpec {
        name: "madness-like",
        scheduler: SchedulerKind::Central,
        local_pass: LocalPass::Copy,
        supports_splitmd: false,
        optimized_broadcast: true,
        honor_priorities: false,
        msg_overhead_ns: 0,
        task_overhead_ns: 0,
    }
}

/// Diamond DAG: source fans out to two middles, both feed a join.
fn run_diamond(backend: BackendSpec, ranks: usize) {
    let src_out_a: Edge<u32, i64> = Edge::new("a");
    let src_out_b: Edge<u32, i64> = Edge::new("b");
    let mid_a_out: Edge<u32, i64> = Edge::new("ma");
    let mid_b_out: Edge<u32, i64> = Edge::new("mb");
    let start: Edge<u32, i64> = Edge::new("start");

    let mut g = GraphBuilder::new();
    let source = g.make_tt(
        "source",
        (start,),
        (src_out_a.clone(), src_out_b.clone()),
        |k: &u32| *k as usize,
        |k, (x,): (i64,), outs| {
            outs.send::<0>(*k, x + 1);
            outs.send::<1>(*k, x + 2);
        },
    );
    let _mid_a = g.make_tt(
        "mid_a",
        (src_out_a,),
        (mid_a_out.clone(),),
        |k: &u32| (*k as usize) + 1,
        |k, (x,): (i64,), outs| outs.send::<0>(*k, x * 10),
    );
    let _mid_b = g.make_tt(
        "mid_b",
        (src_out_b,),
        (mid_b_out.clone(),),
        |k: &u32| (*k as usize) + 2,
        |k, (x,): (i64,), outs| outs.send::<0>(*k, x * 100),
    );
    let results = Arc::new(Mutex::new(Vec::new()));
    let res2 = Arc::clone(&results);
    let _join = g.make_tt(
        "join",
        (mid_a_out, mid_b_out),
        (),
        |k: &u32| (*k as usize) + 3,
        move |k, (a, b): (i64, i64), _| res2.lock().unwrap().push((*k, a + b)),
    );

    let exec = Executor::new(g.build(), ExecConfig::distributed(ranks, 2, backend));
    for k in 0..8u32 {
        source.in_ref::<0>().seed(exec.ctx(), k, k as i64);
    }
    let report = exec.finish();
    assert_eq!(report.tasks, 8 * 4);
    let mut out = results.lock().unwrap().clone();
    out.sort();
    let expect: Vec<(u32, i64)> = (0..8)
        .map(|k| (k, (k as i64 + 1) * 10 + (k as i64 + 2) * 100))
        .collect();
    assert_eq!(out, expect);
}

#[test]
fn diamond_parsec_multi_rank() {
    run_diamond(parsec_like(), 4);
}

#[test]
fn diamond_madness_multi_rank() {
    run_diamond(madness_like(), 4);
}

#[test]
fn diamond_single_rank() {
    run_diamond(parsec_like(), 1);
}

#[test]
fn broadcast_serializes_once_per_destination_rank() {
    // One task broadcasts one value to 12 keys spread over 4 ranks;
    // the optimized path serializes once and sends 3 remote AMs.
    let start: Edge<u32, u64> = Edge::new("start");
    let fan: Edge<u32, u64> = Edge::new("fan");
    let mut g = GraphBuilder::new();
    let src = g.make_tt(
        "src",
        (start,),
        (fan.clone(),),
        |_| 0usize,
        |_, (x,): (u64,), outs| {
            let keys: Vec<u32> = (0..12).collect();
            outs.broadcast::<0>(&keys, x);
        },
    );
    let count = Arc::new(AtomicU64::new(0));
    let c2 = Arc::clone(&count);
    let _dst = g.make_tt(
        "dst",
        (fan,),
        (),
        |k: &u32| (*k % 4) as usize,
        move |_, (_x,): (u64,), _| {
            c2.fetch_add(1, Ordering::SeqCst);
        },
    );
    let exec = Executor::new(g.build(), ExecConfig::distributed(4, 1, parsec_like()));
    src.in_ref::<0>().seed(exec.ctx(), 0, 7);
    let report = exec.finish();
    assert_eq!(count.load(Ordering::SeqCst), 12);
    assert_eq!(report.comm.serializations, 1, "one serialization pass");
    assert_eq!(report.comm.am_count, 3, "one AM per remote rank");
}

#[test]
fn naive_broadcast_serializes_per_key() {
    let mut backend = parsec_like();
    backend.optimized_broadcast = false;

    let start: Edge<u32, u64> = Edge::new("start");
    let fan: Edge<u32, u64> = Edge::new("fan");
    let mut g = GraphBuilder::new();
    let src = g.make_tt(
        "src",
        (start,),
        (fan.clone(),),
        |_| 0usize,
        |_, (x,): (u64,), outs| {
            let keys: Vec<u32> = (0..12).collect();
            outs.broadcast::<0>(&keys, x);
        },
    );
    let _dst = g.make_tt(
        "dst",
        (fan,),
        (),
        |k: &u32| (*k % 4) as usize,
        move |_, (_x,): (u64,), _| {},
    );
    let exec = Executor::new(g.build(), ExecConfig::distributed(4, 1, backend));
    src.in_ref::<0>().seed(exec.ctx(), 0, 7);
    let report = exec.finish();
    // 9 of the 12 keys live on remote ranks: 9 serializations, 9 AMs.
    assert_eq!(report.comm.serializations, 9);
    assert_eq!(report.comm.am_count, 9);
}

/// One producer on rank 0 broadcasts one value to 12 keys spread over 4
/// ranks (3 local, 3 remote ranks × 3 keys): the per-protocol byte/send
/// accounting must stay pinned so wire-path changes are provably
/// semantics-preserving.
fn run_broadcast_accounting<V: ttg_core::Data + Clone>(
    backend: BackendSpec,
    v: V,
) -> ttg_comm::StatsSnapshot {
    let start: Edge<u32, V> = Edge::new("start");
    let fan: Edge<u32, V> = Edge::new("fan");
    let mut g = GraphBuilder::new();
    let src = g.make_tt(
        "src",
        (start,),
        (fan.clone(),),
        |_| 0usize,
        |_, (x,): (V,), outs| {
            let keys: Vec<u32> = (0..12).collect();
            outs.broadcast::<0>(&keys, x);
        },
    );
    let _dst = g.make_tt(
        "dst",
        (fan,),
        (),
        |k: &u32| (*k % 4) as usize,
        |_, (_x,): (V,), _| {},
    );
    let exec = Executor::new(g.build(), ExecConfig::distributed(4, 1, backend));
    src.in_ref::<0>().seed(exec.ctx(), 0, v);
    exec.finish().comm
}

#[test]
fn broadcast_accounting_optimized_inline() {
    // 9 remote keys collapse to 3 rank-level sends: 6 sends saved, each
    // carrying the 8-byte u64 payload.
    let comm = run_broadcast_accounting(parsec_like(), 7u64);
    assert_eq!(comm.serializations, 1);
    assert_eq!(comm.bcast_sends_saved, 6);
    assert_eq!(comm.bcast_bytes_saved, 6 * 8);
}

#[test]
fn broadcast_accounting_naive() {
    let mut backend = parsec_like();
    backend.optimized_broadcast = false;
    let comm = run_broadcast_accounting(backend, 7u64);
    assert_eq!(comm.serializations, 9, "one serialization per remote key");
    assert_eq!(comm.bcast_sends_saved, 0);
    assert_eq!(comm.bcast_bytes_saved, 0);
}

#[test]
fn broadcast_accounting_splitmd() {
    // SplitMd registers the 8000-byte payload once; the dedup savings are
    // counted against the payload, not the tiny metadata message.
    let blob = Blob {
        data: (0..1000).map(|i| i as f64).collect(),
    };
    let comm = run_broadcast_accounting(parsec_like(), blob);
    assert_eq!(comm.serializations, 1);
    assert_eq!(comm.bcast_sends_saved, 6);
    assert_eq!(comm.bcast_bytes_saved, 6 * 8000);
    assert_eq!(comm.rma_gets, 3, "one RMA fetch per remote rank");
}

#[test]
fn concurrent_matching_inserts_fire_each_task_exactly_once() {
    // Two producer templates running on 8 workers race their sends into the
    // same consumer: same-key races (terminals 0 and 1 of one key meet in
    // one matching-table entry) and different-key races (shard contention)
    // must both resolve to exactly one firing per key.
    const KEYS: u32 = 256;
    let sa: Edge<u32, u64> = Edge::new("sa");
    let sb: Edge<u32, u64> = Edge::new("sb");
    let ta: Edge<u32, u64> = Edge::new("ta");
    let tb: Edge<u32, u64> = Edge::new("tb");
    let mut g = GraphBuilder::new();
    let pa = g.make_tt(
        "pa",
        (sa,),
        (ta.clone(),),
        |_| 0usize,
        |k, (x,): (u64,), outs| outs.send::<0>(*k, x),
    );
    let pb = g.make_tt(
        "pb",
        (sb,),
        (tb.clone(),),
        |_| 0usize,
        |k, (x,): (u64,), outs| outs.send::<0>(*k, x + 1),
    );
    let fired: Arc<Vec<AtomicU64>> = Arc::new((0..KEYS).map(|_| AtomicU64::new(0)).collect());
    let f2 = Arc::clone(&fired);
    let _join = g.make_tt(
        "join",
        (ta, tb),
        (),
        |_| 0usize,
        move |k, (a, b): (u64, u64), _| {
            assert_eq!(b, a + 1, "inputs of key {k} mismatched");
            f2[*k as usize].fetch_add(1, Ordering::SeqCst);
        },
    );
    let exec = Executor::new(g.build(), ExecConfig::local(8));
    for k in 0..KEYS {
        pa.in_ref::<0>().seed(exec.ctx(), k, k as u64);
        pb.in_ref::<0>().seed(exec.ctx(), k, k as u64);
    }
    let report = exec.finish();
    assert_eq!(report.tasks, 3 * KEYS as u64);
    for (k, c) in fired.iter().enumerate() {
        let n = c.load(Ordering::SeqCst);
        assert_eq!(n, 1, "join for key {k} fired {n} times");
    }
}

#[test]
fn streaming_terminal_with_static_size() {
    // 2^d children stream into one compress-style task (paper Listing 3).
    let inputs: Edge<u32, f64> = Edge::new("stream_in");
    let results = Arc::new(Mutex::new(Vec::new()));
    let res2 = Arc::clone(&results);
    let mut g = GraphBuilder::new();
    let acc = g.make_tt(
        "accumulate",
        (inputs,),
        (),
        |k: &u32| (*k % 2) as usize,
        move |k, (sum,): (f64,), _| res2.lock().unwrap().push((*k, sum)),
    );
    acc.set_input_reducer::<0>(|a, b| *a += b, Some(8))
        .expect("pre-attach");

    let exec = Executor::new(g.build(), ExecConfig::distributed(2, 2, parsec_like()));
    for k in 0..3u32 {
        for i in 0..8 {
            acc.in_ref::<0>().seed(exec.ctx(), k, (i + 1) as f64);
        }
    }
    let report = exec.finish();
    assert_eq!(report.tasks, 3);
    let mut out = results.lock().unwrap().clone();
    out.sort_by_key(|(k, _)| *k);
    assert_eq!(out, vec![(0, 36.0), (1, 36.0), (2, 36.0)]);
}

#[test]
fn streaming_terminal_with_dynamic_size() {
    // A controller task decides per-key stream sizes at run time.
    let ctl: Edge<u32, Ctl> = Edge::new("ctl");
    let data: Edge<u32, u64> = Edge::new("data");
    let results = Arc::new(Mutex::new(Vec::new()));
    let res2 = Arc::clone(&results);

    let mut g = GraphBuilder::new();
    let acc = g.make_tt(
        "acc",
        (data.clone(),),
        (),
        |k: &u32| (*k % 2) as usize,
        move |k, (sum,): (u64,), _| res2.lock().unwrap().push((*k, sum)),
    );
    acc.set_input_reducer::<0>(|a, b| *a += b, None)
        .expect("pre-attach");

    let acc_in = acc.in_ref::<0>();
    let driver = g.make_tt(
        "driver",
        (ctl,),
        (data,),
        |_| 0usize,
        move |_, (_c,): (Ctl,), outs| {
            // Key k receives k+1 messages of value 1 each.
            for k in 0..4u32 {
                acc_in.set_size(outs, &k, (k + 1) as usize);
                for _ in 0..=k {
                    outs.send::<0>(k, 1);
                }
            }
        },
    );

    let exec = Executor::new(g.build(), ExecConfig::distributed(2, 2, parsec_like()));
    driver.in_ref::<0>().seed(exec.ctx(), 0, Ctl);
    exec.finish();
    let mut out = results.lock().unwrap().clone();
    out.sort_by_key(|(k, _)| *k);
    assert_eq!(out, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
}

#[test]
fn finalize_closes_unbounded_stream() {
    let ctl: Edge<u32, Ctl> = Edge::new("ctl");
    let data: Edge<u32, u64> = Edge::new("data");
    let results = Arc::new(Mutex::new(Vec::new()));
    let res2 = Arc::clone(&results);

    let mut g = GraphBuilder::new();
    let acc = g.make_tt(
        "acc",
        (data.clone(),),
        (),
        |_k: &u32| 1usize, // force cross-rank finalize
        move |k, (sum,): (u64,), _| res2.lock().unwrap().push((*k, sum)),
    );
    acc.set_input_reducer::<0>(|a, b| *a += b, None)
        .expect("pre-attach");

    let acc_in = acc.in_ref::<0>();
    let driver = g.make_tt(
        "driver",
        (ctl,),
        (data,),
        |_| 0usize,
        move |_, (_c,): (Ctl,), outs| {
            for _ in 0..5 {
                outs.send::<0>(9, 10);
            }
            acc_in.finalize(outs, &9);
        },
    );

    let exec = Executor::new(g.build(), ExecConfig::distributed(2, 1, parsec_like()));
    driver.in_ref::<0>().seed(exec.ctx(), 0, Ctl);
    exec.finish();
    assert_eq!(results.lock().unwrap().clone(), vec![(9, 50)]);
}

/// A splitmd-capable payload: metadata is the length, the payload is the
/// raw f64 buffer.
#[derive(Debug, Clone, PartialEq)]
struct Blob {
    data: Vec<f64>,
}

impl Wire for Blob {
    const KIND: WireKind = WireKind::SplitMd;
    fn encode(&self, b: &mut WriteBuf) {
        self.data.encode(b);
    }
    fn decode(r: &mut ReadBuf<'_>) -> Result<Self, WireError> {
        Ok(Blob {
            data: Vec::<f64>::decode(r)?,
        })
    }
    fn split_encode_md(&self, b: &mut WriteBuf) {
        b.put_usize(self.data.len());
    }
    fn split_decode_md(r: &mut ReadBuf<'_>) -> Result<Self, WireError> {
        let n = r.get_usize()?;
        Ok(Blob {
            data: Vec::with_capacity(n),
        })
    }
    fn split_payload(&self) -> Option<Vec<u8>> {
        Some(ttg_comm::f64s_to_bytes(&self.data))
    }
    fn split_attach(&mut self, bytes: &[u8]) {
        self.data = ttg_comm::bytes_to_f64s(bytes);
    }
}

fn run_blob_transfer(backend: BackendSpec) -> (ttg_comm::StatsSnapshot, Vec<f64>) {
    let start: Edge<u32, Blob> = Edge::new("start");
    let hop: Edge<u32, Blob> = Edge::new("hop");
    let results = Arc::new(Mutex::new(Vec::new()));
    let res2 = Arc::clone(&results);
    let mut g = GraphBuilder::new();
    let src = g.make_tt(
        "src",
        (start,),
        (hop.clone(),),
        |_| 0usize,
        |_, (blob,): (Blob,), outs| outs.send::<0>(1, blob),
    );
    let _dst = g.make_tt(
        "dst",
        (hop,),
        (),
        |_| 1usize, // remote
        move |_, (blob,): (Blob,), _| res2.lock().unwrap().extend(blob.data),
    );
    let exec = Executor::new(g.build(), ExecConfig::distributed(2, 1, backend));
    let blob = Blob {
        data: (0..1000).map(|i| i as f64).collect(),
    };
    src.in_ref::<0>().seed(exec.ctx(), 0, blob);
    let report = exec.finish();
    let out = results.lock().unwrap().clone();
    (report.comm, out)
}

#[test]
fn splitmd_uses_rma_on_supporting_backend() {
    let (comm, out) = run_blob_transfer(parsec_like());
    assert_eq!(out.len(), 1000);
    assert_eq!(out[999], 999.0);
    assert_eq!(comm.rma_gets, 1, "payload fetched via RMA");
    assert_eq!(comm.rma_bytes, 8000);
    // Only metadata went through the eager AM: far smaller than payload.
    assert!(comm.am_bytes < 200, "am_bytes = {}", comm.am_bytes);
}

#[test]
fn splitmd_falls_back_to_inline_without_support() {
    let (comm, out) = run_blob_transfer(madness_like());
    assert_eq!(out.len(), 1000);
    assert_eq!(comm.rma_gets, 0);
    assert!(comm.am_bytes > 8000, "whole object inline");
}

#[test]
fn copy_backend_copies_share_backend_does_not() {
    // One value consumed by 3 local tasks.
    fn run(backend: BackendSpec) -> u64 {
        let start: Edge<u32, Vec<u64>> = Edge::new("start");
        let fan: Edge<u32, Vec<u64>> = Edge::new("fan");
        let mut g = GraphBuilder::new();
        let src = g.make_tt(
            "src",
            (start,),
            (fan.clone(),),
            |_| 0usize,
            |_, (v,): (Vec<u64>,), outs| outs.broadcast::<0>(&[0, 1, 2], v),
        );
        let _dst = g.make_tt(
            "dst",
            (fan,),
            (),
            |_| 0usize, // all on rank 0: pure local traffic
            |_, (v,): (Vec<u64>,), _| assert_eq!(v.len(), 64),
        );
        // One worker: with more, a consumer can take its value while the
        // producer still holds the original Arc, and the COW copy count
        // becomes schedule-dependent (up to 3, same as the copy backend).
        let exec = Executor::new(g.build(), ExecConfig::distributed(1, 1, backend));
        src.in_ref::<0>().seed(exec.ctx(), 0, vec![0; 64]);
        exec.finish().comm.data_copies
    }
    let copies_share = run(parsec_like());
    let copies_copy = run(madness_like());
    assert_eq!(copies_copy, 3, "copy backend: one deep copy per consumer");
    // Share backend: consumers share the Arc; only a consumer that takes
    // the value while later consumers still hold it pays a COW copy.
    assert!(
        copies_share < copies_copy,
        "share {} vs copy {}",
        copies_share,
        copies_copy
    );
}

#[test]
fn data_dependent_iteration_through_cyclic_template_graph() {
    // Collatz: the template graph has a self-loop; the executed DAG depends
    // on the data (paper: "each TTG encodes a set of possible DAGs").
    let loop_edge: Edge<u32, u64> = Edge::new("loop");
    let done: Edge<u32, u64> = Edge::new("done");
    let results = Arc::new(Mutex::new(Vec::new()));
    let res2 = Arc::clone(&results);

    let mut g = GraphBuilder::new();
    let step = g.make_tt(
        "collatz",
        (loop_edge.clone(),),
        (loop_edge.clone(), done.clone()),
        |k: &u32| (*k % 3) as usize,
        |k, (x,): (u64,), outs| {
            if x == 1 {
                outs.send::<1>(*k, x);
            } else if x % 2 == 0 {
                outs.send::<0>(*k, x / 2);
            } else {
                outs.send::<0>(*k, 3 * x + 1);
            }
        },
    );
    let _sink = g.make_tt(
        "sink",
        (done,),
        (),
        |_| 0usize,
        move |k, (x,): (u64,), _| res2.lock().unwrap().push((*k, x)),
    );

    let exec = Executor::new(g.build(), ExecConfig::distributed(3, 1, parsec_like()));
    // Task id is reused across iterations? No — Collatz on key k would
    // collide in the matching table. Use distinct keys per seed instead:
    // each seed walks its own orbit with key k.
    step.in_ref::<0>().seed(exec.ctx(), 0, 27);
    let report = exec.finish();
    assert_eq!(results.lock().unwrap().clone(), vec![(0, 1)]);
    // Collatz orbit of 27 has 111 steps before reaching 1.
    assert_eq!(report.tasks, 112 + 1);
}

#[test]
fn pure_control_flow_with_ctl() {
    let ping: Edge<u64, Ctl> = Edge::new("ping");
    let count = Arc::new(AtomicU64::new(0));
    let c2 = Arc::clone(&count);
    let mut g = GraphBuilder::new();
    let relay = g.make_tt(
        "relay",
        (ping.clone(),),
        (ping.clone(),),
        |k: &u64| (*k % 4) as usize,
        move |k, (_c,): (Ctl,), outs| {
            if *k < 100 {
                outs.send::<0>(*k + 1, Ctl);
            }
            c2.fetch_add(1, Ordering::SeqCst);
        },
    );
    let exec = Executor::new(g.build(), ExecConfig::distributed(4, 1, parsec_like()));
    relay.in_ref::<0>().seed(exec.ctx(), 0, Ctl);
    let report = exec.finish();
    assert_eq!(count.load(Ordering::SeqCst), 101);
    assert_eq!(report.tasks, 101);
    // Each Ctl AM carries only the header + key: zero data bytes.
    assert!(report.comm.am_count >= 75, "ring hops are mostly remote");
}

#[test]
fn task_ids_of_producer_and_consumer_may_differ_in_type() {
    // TRSM-style: 2-tuple tasks emit messages keyed by 3-tuples.
    let start: Edge<(u32, u32), f64> = Edge::new("start");
    let to3: Edge<(u32, u32, u32), f64> = Edge::new("to3");
    let results = Arc::new(Mutex::new(Vec::new()));
    let res2 = Arc::clone(&results);
    let mut g = GraphBuilder::new();
    let src = g.make_tt(
        "two",
        (start,),
        (to3.clone(),),
        |k: &(u32, u32)| (k.0 + k.1) as usize,
        |k, (x,): (f64,), outs| {
            for m in 0..3u32 {
                outs.send::<0>((k.0, k.1, m), x + m as f64);
            }
        },
    );
    let _dst = g.make_tt(
        "three",
        (to3,),
        (),
        |k: &(u32, u32, u32)| (k.0 + k.1 + k.2) as usize,
        move |k, (x,): (f64,), _| res2.lock().unwrap().push((*k, x)),
    );
    let exec = Executor::new(g.build(), ExecConfig::distributed(2, 1, parsec_like()));
    src.in_ref::<0>().seed(exec.ctx(), (1, 2), 0.5);
    exec.finish();
    let mut out = results.lock().unwrap().clone();
    out.sort_by_key(|(k, _)| *k);
    assert_eq!(
        out,
        vec![((1, 2, 0), 0.5), ((1, 2, 1), 1.5), ((1, 2, 2), 2.5)]
    );
}

#[test]
fn trace_records_tasks_and_dependencies() {
    let start: Edge<u32, u64> = Edge::new("start");
    let mid: Edge<u32, u64> = Edge::new("mid");
    let mut g = GraphBuilder::new();
    let a = g.make_tt(
        "a",
        (start,),
        (mid.clone(),),
        |_| 0usize,
        |k, (x,): (u64,), outs| outs.send::<0>(*k, x + 1),
    );
    let _b = g.make_tt("b", (mid,), (), |_| 1usize, |_, (_x,): (u64,), _| {});
    let exec = Executor::new(
        g.build(),
        ExecConfig::distributed(2, 1, parsec_like()).with_trace(),
    );
    a.in_ref::<0>().seed(exec.ctx(), 0, 1);
    let report = exec.finish();
    let trace = report.trace.expect("trace enabled");
    assert_eq!(trace.len(), 2);
    let ev_a = trace.iter().find(|e| e.name == "a").unwrap();
    let ev_b = trace.iter().find(|e| e.name == "b").unwrap();
    assert_eq!(ev_a.deps.len(), 1);
    assert_eq!(ev_a.deps[0].from_task, 0, "seeded");
    assert_eq!(ev_b.deps.len(), 1);
    assert_eq!(ev_b.deps[0].from_task, ev_a.id, "b consumed a's output");
    assert!(ev_b.deps[0].bytes > 0, "crossed a rank boundary");
    assert_eq!(ev_b.rank, 1);
}
