//! Edge-case and failure-mode tests of the core model.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ttg_core::prelude::*;

fn backend() -> BackendSpec {
    BackendSpec::default_spec()
}

#[test]
fn empty_graph_finishes_immediately() {
    let g = GraphBuilder::new().build();
    let exec = Executor::new(g, ExecConfig::distributed(2, 1, backend()));
    let report = exec.finish();
    assert_eq!(report.tasks, 0);
    assert_eq!(report.comm.am_count, 0);
}

#[test]
fn unseeded_graph_finishes_with_no_tasks() {
    let e: Edge<u32, u64> = Edge::new("e");
    let mut g = GraphBuilder::new();
    let _tt = g.make_tt("idle", (e,), (), |_| 0usize, |_, (_x,): (u64,), _| {});
    let exec = Executor::new(g.build(), ExecConfig::local(2));
    let report = exec.finish();
    assert_eq!(report.tasks, 0);
}

#[test]
fn partial_inputs_never_fire() {
    // A two-input join that only ever receives one input: the execution
    // quiesces with the pending entry parked (TTG semantics).
    let a: Edge<u32, u64> = Edge::new("a");
    let b: Edge<u32, u64> = Edge::new("b");
    let fired = Arc::new(AtomicU64::new(0));
    let f2 = Arc::clone(&fired);
    let mut g = GraphBuilder::new();
    let join = g.make_tt(
        "join",
        (a, b),
        (),
        |_| 0usize,
        move |_, (_x, _y): (u64, u64), _| {
            f2.fetch_add(1, Ordering::SeqCst);
        },
    );
    let exec = Executor::new(g.build(), ExecConfig::local(1));
    join.in_ref::<0>().seed(exec.ctx(), 7, 1);
    let report = exec.finish();
    assert_eq!(fired.load(Ordering::SeqCst), 0);
    assert_eq!(report.tasks, 0);
}

// Under the `checked` feature this same misuse is a structured
// `ExecReport::violations` record instead of a panic — covered by
// crates/check/tests/sanitizer.rs.
#[cfg(not(feature = "checked"))]
#[test]
#[should_panic(expected = "duplicate input")]
fn duplicate_input_without_reducer_panics() {
    let a: Edge<u32, u64> = Edge::new("a");
    let b: Edge<u32, u64> = Edge::new("b");
    let mut g = GraphBuilder::new();
    let join = g.make_tt(
        "join",
        (a, b),
        (),
        |_| 0usize,
        |_, (_x, _y): (u64, u64), _| {},
    );
    let exec = Executor::new(g.build(), ExecConfig::local(1));
    // Two messages on the same terminal for the same key, no reducer.
    join.in_ref::<0>().seed(exec.ctx(), 7, 1);
    join.in_ref::<0>().seed(exec.ctx(), 7, 2);
    exec.finish();
}

#[test]
fn broadcast_with_empty_key_list_is_a_noop() {
    let start: Edge<u32, u64> = Edge::new("start");
    let fan: Edge<u32, u64> = Edge::new("fan");
    let mut g = GraphBuilder::new();
    let src = g.make_tt(
        "src",
        (start,),
        (fan.clone(),),
        |_| 0usize,
        |_, (x,): (u64,), outs| outs.broadcast::<0>(&[], x),
    );
    let _dst = g.make_tt("dst", (fan,), (), |_| 0usize, |_, (_x,): (u64,), _| {});
    let exec = Executor::new(g.build(), ExecConfig::local(1));
    src.in_ref::<0>().seed(exec.ctx(), 0, 1);
    let report = exec.finish();
    assert_eq!(report.tasks, 1); // only the source ran
}

#[test]
fn keymap_can_be_replaced_before_seeding() {
    let e: Edge<u32, u64> = Edge::new("e");
    let ran_on = Arc::new(AtomicU64::new(u64::MAX));
    let r2 = Arc::clone(&ran_on);
    let mut g = GraphBuilder::new();
    let tt = g.make_tt(
        "probe",
        (e,),
        (),
        |_| 0usize,
        move |_, (_x,): (u64,), outs| {
            r2.store(outs.rank() as u64, Ordering::SeqCst);
        },
    );
    tt.set_keymap(|_| 2usize).expect("pre-attach");
    let exec = Executor::new(g.build(), ExecConfig::distributed(4, 1, backend()));
    tt.in_ref::<0>().seed(exec.ctx(), 0, 1);
    exec.finish();
    assert_eq!(ran_on.load(Ordering::SeqCst), 2);
}

#[test]
fn keymap_larger_than_ranks_wraps() {
    let e: Edge<u32, u64> = Edge::new("e");
    let ran_on = Arc::new(AtomicU64::new(u64::MAX));
    let r2 = Arc::clone(&ran_on);
    let mut g = GraphBuilder::new();
    let tt = g.make_tt(
        "probe",
        (e,),
        (),
        |_| 7usize, // only 2 ranks exist
        move |_, (_x,): (u64,), outs| {
            r2.store(outs.rank() as u64, Ordering::SeqCst);
        },
    );
    let exec = Executor::new(g.build(), ExecConfig::distributed(2, 1, backend()));
    tt.in_ref::<0>().seed(exec.ctx(), 0, 1);
    exec.finish();
    assert_eq!(ran_on.load(Ordering::SeqCst), 7 % 2);
}

#[test]
fn stream_size_one_fires_per_message() {
    let e: Edge<u32, u64> = Edge::new("e");
    let count = Arc::new(AtomicU64::new(0));
    let c2 = Arc::clone(&count);
    let mut g = GraphBuilder::new();
    let tt = g.make_tt(
        "each",
        (e,),
        (),
        |_| 0usize,
        move |_, (_x,): (u64,), _| {
            c2.fetch_add(1, Ordering::SeqCst);
        },
    );
    tt.set_input_reducer::<0>(|a, b| *a += b, Some(1))
        .expect("pre-attach");
    let exec = Executor::new(g.build(), ExecConfig::local(2));
    for i in 0..5 {
        // Distinct keys: each stream of size 1 completes immediately.
        tt.in_ref::<0>().seed(exec.ctx(), i, 1);
    }
    let report = exec.finish();
    assert_eq!(count.load(Ordering::SeqCst), 5);
    assert_eq!(report.tasks, 5);
}

#[test]
fn many_ranks_few_keys() {
    // More ranks than work: most pools idle; must still terminate quickly.
    let e: Edge<u32, u64> = Edge::new("e");
    let mut g = GraphBuilder::new();
    let tt = g.make_tt(
        "one",
        (e,),
        (),
        |k: &u32| *k as usize,
        |_, (_x,): (u64,), _| {},
    );
    let exec = Executor::new(g.build(), ExecConfig::distributed(16, 1, backend()));
    tt.in_ref::<0>().seed(exec.ctx(), 3, 1);
    let report = exec.finish();
    assert_eq!(report.tasks, 1);
}

#[test]
fn deep_recursion_through_graph() {
    // A 10_000-step chain exercises matching-table churn and quiescence.
    let e: Edge<u64, u64> = Edge::new("chain");
    let mut g = GraphBuilder::new();
    let tt = g.make_tt(
        "step",
        (e.clone(),),
        (e.clone(),),
        |k: &u64| (*k % 2) as usize,
        |k, (x,): (u64,), outs| {
            if *k < 10_000 {
                outs.send::<0>(*k + 1, x + 1);
            }
        },
    );
    let exec = Executor::new(g.build(), ExecConfig::distributed(2, 1, backend()));
    tt.in_ref::<0>().seed(exec.ctx(), 0, 0);
    let report = exec.finish();
    assert_eq!(report.tasks, 10_001);
}

#[test]
fn report_elapsed_and_per_node_are_populated() {
    let e: Edge<u32, u64> = Edge::new("e");
    let mut g = GraphBuilder::new();
    let tt = g.make_tt("work", (e,), (), |_| 0usize, |_, (_x,): (u64,), _| {});
    let exec = Executor::new(g.build(), ExecConfig::local(1));
    tt.in_ref::<0>().seed(exec.ctx(), 0, 1);
    let report = exec.finish();
    assert!(report.elapsed.as_nanos() > 0);
    assert_eq!(report.per_node, vec![("work", 1)]);
}
