//! Copy-on-write value-plane semantics: broadcast fan-out shares one
//! erased allocation per rank, consumers move out at refcount 1 and
//! clone-on-write only when they race a live reader, and `Arc` payloads
//! never deep-copy at all.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ttg_core::prelude::*;
use ttg_telemetry::MetricKey;

fn core_counter(report: &ExecReport, rank: usize, name: &'static str) -> u64 {
    report
        .telemetry
        .counter(&MetricKey::ranked(rank, "core", name))
}

/// A single-consumer send in Share mode moves the value end to end: the
/// consumer receives the producer's original heap allocation.
#[test]
fn single_consumer_send_moves_allocation() {
    let start: Edge<u32, Vec<u64>> = Edge::new("start");
    let link: Edge<u32, Vec<u64>> = Edge::new("link");
    let mut g = GraphBuilder::new();
    let src = g.make_tt(
        "src",
        (start,),
        (link.clone(),),
        |_| 0usize,
        |k, (v,): (Vec<u64>,), outs| outs.send::<0>(*k, v),
    );
    let seen: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    let s2 = Arc::clone(&seen);
    let _dst = g.make_tt(
        "dst",
        (link,),
        (),
        |_| 0usize,
        move |_, (v,): (Vec<u64>,), _| s2.lock().unwrap().push(v.as_ptr() as usize),
    );
    let exec = Executor::new(
        g.build(),
        ExecConfig::distributed(1, 1, BackendSpec::default_spec()),
    );
    let payload: Vec<u64> = (0..512).collect();
    let ptr = payload.as_ptr() as usize;
    src.in_ref::<0>().seed(exec.ctx(), 7, payload);
    let report = exec.finish();
    assert_eq!(*seen.lock().unwrap(), vec![ptr], "value was not moved");
    assert_eq!(report.comm.data_copies, 0);
    assert_eq!(core_counter(&report, 0, "cow_clones"), 0);
    assert!(report.violations.is_empty() && report.stuck.is_empty());
}

/// Width-4 broadcast of an owned `Vec` on one worker: the value is erased
/// into a shared handle once, the first three consumers pay copy-on-write
/// clones (the value is still shared when they take), and the last holder
/// moves the original allocation out.
#[test]
fn last_take_moves_shared_allocation() {
    const W: usize = 4;
    let start: Edge<u32, Vec<u64>> = Edge::new("start");
    let fan: Edge<u32, Vec<u64>> = Edge::new("fan");
    let mut g = GraphBuilder::new();
    let src = g.make_tt(
        "src",
        (start,),
        (fan.clone(),),
        |_| 0usize,
        |_, (v,): (Vec<u64>,), outs| {
            let keys: Vec<u32> = (0..W as u32).collect();
            outs.broadcast::<0>(&keys, v);
        },
    );
    let expect: Vec<u64> = (0..512).collect();
    let expect2 = expect.clone();
    let seen: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    let s2 = Arc::clone(&seen);
    let _dst = g.make_tt(
        "dst",
        (fan,),
        (),
        |_| 0usize,
        move |k, (mut v,): (Vec<u64>,), _| {
            // Every consumer must observe the producer's value, then may
            // mutate its own without aliasing into any other consumer.
            assert_eq!(v, expect2, "consumer {k} saw a corrupted view");
            s2.lock().unwrap().push(v.as_ptr() as usize);
            v.iter_mut().for_each(|x| *x = *x * 2 + *k as u64);
        },
    );
    let exec = Executor::new(
        g.build(),
        ExecConfig::distributed(1, 1, BackendSpec::default_spec()),
    );
    let ptr = expect.as_ptr() as usize;
    src.in_ref::<0>().seed(exec.ctx(), 0, expect);
    let report = exec.finish();

    let ptrs = seen.lock().unwrap().clone();
    assert_eq!(ptrs.len(), W);
    assert_eq!(
        ptrs.iter().filter(|&&p| p == ptr).count(),
        1,
        "exactly one consumer must receive the original allocation"
    );
    assert_eq!(core_counter(&report, 0, "values_shared"), 1);
    assert_eq!(core_counter(&report, 0, "deep_copies_avoided"), 1);
    assert_eq!(core_counter(&report, 0, "cow_clones"), (W - 1) as u64);
    assert!(core_counter(&report, 0, "cloned_bytes") > 0);
    assert!(report.violations.is_empty() && report.stuck.is_empty());
}

/// `Arc` payloads flow through the fan-out as refcount bumps: every
/// consumer sees the same allocation and no deep copy is ever paid.
#[test]
fn arc_payload_shares_allocation_across_consumers() {
    const W: usize = 8;
    let start: Edge<u32, Arc<Vec<u64>>> = Edge::new("start");
    let fan: Edge<u32, Arc<Vec<u64>>> = Edge::new("fan");
    let mut g = GraphBuilder::new();
    let src = g.make_tt(
        "src",
        (start,),
        (fan.clone(),),
        |_| 0usize,
        |_, (v,): (Arc<Vec<u64>>,), outs| {
            let keys: Vec<u32> = (0..W as u32).collect();
            outs.broadcast::<0>(&keys, v);
        },
    );
    let seen: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    let s2 = Arc::clone(&seen);
    let _dst = g.make_tt(
        "dst",
        (fan,),
        (),
        |_| 0usize,
        move |_, (v,): (Arc<Vec<u64>>,), _| s2.lock().unwrap().push(v.as_ptr() as usize),
    );
    let exec = Executor::new(
        g.build(),
        ExecConfig::distributed(1, 2, BackendSpec::default_spec()),
    );
    let payload: Arc<Vec<u64>> = Arc::new((0..256).collect());
    let ptr = payload.as_ptr() as usize;
    src.in_ref::<0>().seed(exec.ctx(), 0, payload);
    let report = exec.finish();

    let ptrs = seen.lock().unwrap().clone();
    assert_eq!(ptrs.len(), W);
    assert!(
        ptrs.iter().all(|&p| p == ptr),
        "every consumer must share the original allocation"
    );
    assert_eq!(report.comm.data_copies, 0);
    assert_eq!(core_counter(&report, 0, "deep_copies_avoided"), W as u64);
    assert_eq!(core_counter(&report, 0, "cow_clones"), 0);
    assert!(report.violations.is_empty() && report.stuck.is_empty());
}

/// Repeated keys in a broadcast are deduplicated: each distinct task fires
/// exactly once instead of tripping the exactly-once matching guard.
#[test]
fn duplicate_broadcast_keys_deliver_once() {
    let start: Edge<u32, u64> = Edge::new("start");
    let fan: Edge<u32, u64> = Edge::new("fan");
    let mut g = GraphBuilder::new();
    let src = g.make_tt(
        "src",
        (start,),
        (fan.clone(),),
        |_| 0usize,
        |_, (x,): (u64,), outs| {
            outs.broadcast::<0>(&[1, 2, 1, 3, 2, 1], x);
        },
    );
    let fired = Arc::new(AtomicU64::new(0));
    let keysum = Arc::new(AtomicU64::new(0));
    let f2 = Arc::clone(&fired);
    let k2 = Arc::clone(&keysum);
    let _dst = g.make_tt(
        "dst",
        (fan,),
        (),
        |_| 0usize,
        move |k, (_x,): (u64,), _| {
            f2.fetch_add(1, Ordering::Relaxed);
            k2.fetch_add(*k as u64, Ordering::Relaxed);
        },
    );
    let exec = Executor::new(
        g.build(),
        ExecConfig::distributed(1, 2, BackendSpec::default_spec()),
    );
    src.in_ref::<0>().seed(exec.ctx(), 0, 5);
    let report = exec.finish();
    assert_eq!(fired.load(Ordering::Relaxed), 3);
    assert_eq!(keysum.load(Ordering::Relaxed), 1 + 2 + 3);
    assert!(report.violations.is_empty() && report.stuck.is_empty());
}

/// A remote broadcast consumed by two different template tasks on the same
/// edge encodes the value once: the serialize-once cache is shared across
/// consumer ports, not just across destination ranks.
#[test]
fn cross_port_remote_broadcast_serializes_once() {
    let start: Edge<u32, Vec<u64>> = Edge::new("start");
    let fan: Edge<u32, Vec<u64>> = Edge::new("fan");
    let mut g = GraphBuilder::new();
    let src = g.make_tt(
        "src",
        (start,),
        (fan.clone(),),
        |_| 0usize,
        |_, (v,): (Vec<u64>,), outs| {
            outs.broadcast::<0>(&[1], v);
        },
    );
    let hits = Arc::new(AtomicU64::new(0));
    let h_a = Arc::clone(&hits);
    let _dst_a = g.make_tt(
        "dst_a",
        (fan.clone(),),
        (),
        |_| 1usize,
        move |_, (_v,): (Vec<u64>,), _| {
            h_a.fetch_add(1, Ordering::Relaxed);
        },
    );
    let h_b = Arc::clone(&hits);
    let _dst_b = g.make_tt(
        "dst_b",
        (fan,),
        (),
        |_| 1usize,
        move |_, (_v,): (Vec<u64>,), _| {
            h_b.fetch_add(1, Ordering::Relaxed);
        },
    );
    let exec = Executor::new(
        g.build(),
        ExecConfig::distributed(2, 2, BackendSpec::default_spec()),
    );
    src.in_ref::<0>().seed(exec.ctx(), 0, (0..1000).collect());
    let report = exec.finish();
    assert_eq!(hits.load(Ordering::Relaxed), 2, "both consumers must fire");
    assert_eq!(
        report.comm.serializations, 1,
        "cross-port broadcast must encode the value exactly once"
    );
    assert!(report.violations.is_empty() && report.stuck.is_empty());
}
