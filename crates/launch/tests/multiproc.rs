//! End-to-end multi-process smoke tests: drive the `ttg-launch` binary the
//! way CI does and require the bit-identical (cholesky) / tolerance-bound
//! (bspmm) verification against the single-process reference to pass.
//!
//! Sizes are kept small — each test spawns real OS processes that must
//! handshake over real sockets, factor/multiply, and compare.

use std::process::Command;

fn launch(args: &[&str]) {
    let exe = env!("CARGO_BIN_EXE_ttg-launch");
    let out = Command::new(exe)
        .args(args)
        .output()
        .expect("spawn ttg-launch");
    assert!(
        out.status.success(),
        "ttg-launch {args:?} failed ({}):\n--- stdout ---\n{}\n--- stderr ---\n{}",
        out.status,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn cholesky_two_processes_over_uds_bit_identical() {
    launch(&[
        "--ranks",
        "2",
        "--workers",
        "2",
        "--transport",
        "uds",
        "--nt",
        "5",
        "--nb",
        "8",
        "cholesky",
    ]);
}

#[test]
fn cholesky_two_processes_over_tcp_bit_identical() {
    launch(&[
        "--ranks",
        "2",
        "--workers",
        "2",
        "--transport",
        "tcp",
        "--nt",
        "5",
        "--nb",
        "8",
        "cholesky",
    ]);
}

#[test]
fn bspmm_two_processes_over_uds_matches_reference() {
    launch(&[
        "--ranks",
        "2",
        "--workers",
        "2",
        "--transport",
        "uds",
        "bspmm",
    ]);
}
