//! End-to-end multi-process smoke tests: drive the `ttg-launch` binary the
//! way CI does and require the bit-identical (cholesky) / tolerance-bound
//! (bspmm) verification against the single-process reference to pass.
//!
//! Sizes are kept small — each test spawns real OS processes that must
//! handshake over real sockets, factor/multiply, and compare.

use std::process::Command;

fn launch(args: &[&str]) {
    let exe = env!("CARGO_BIN_EXE_ttg-launch");
    let out = Command::new(exe)
        .args(args)
        .output()
        .expect("spawn ttg-launch");
    assert!(
        out.status.success(),
        "ttg-launch {args:?} failed ({}):\n--- stdout ---\n{}\n--- stderr ---\n{}",
        out.status,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn cholesky_two_processes_over_uds_bit_identical() {
    launch(&[
        "--ranks",
        "2",
        "--workers",
        "2",
        "--transport",
        "uds",
        "--nt",
        "5",
        "--nb",
        "8",
        "cholesky",
    ]);
}

#[test]
fn cholesky_two_processes_over_tcp_bit_identical() {
    launch(&[
        "--ranks",
        "2",
        "--workers",
        "2",
        "--transport",
        "tcp",
        "--nt",
        "5",
        "--nb",
        "8",
        "cholesky",
    ]);
}

#[test]
fn bspmm_two_processes_over_uds_matches_reference() {
    launch(&[
        "--ranks",
        "2",
        "--workers",
        "2",
        "--transport",
        "uds",
        "bspmm",
    ]);
}

/// The chaos-recovery path end to end: rank 1 is scripted to abort
/// mid-factorization, the parent must reap the whole job, clear stale
/// per-rank results, relaunch without the kill script, and still verify
/// bit-identical factors — leaving no stray child processes behind.
#[test]
fn cholesky_uds_killed_rank_recovers_job_bit_identical() {
    let exe = env!("CARGO_BIN_EXE_ttg-launch");
    // A marker only this test's process tree carries, so the leftover
    // scan below cannot confuse children of the other tests in this file.
    let marker = format!("TTG_E2E_RECOVERY_MARKER={}", std::process::id());
    let (key, val) = marker.split_once('=').unwrap();
    let out = Command::new(exe)
        .args([
            "--ranks",
            "2",
            "--workers",
            "2",
            "--transport",
            "uds",
            "--nt",
            "5",
            "--nb",
            "8",
            "--timeout-secs",
            "120",
            "--faults",
            "seed=7,kill=1@3,recover=64",
            "cholesky",
        ])
        .env(key, val)
        .output()
        .expect("spawn ttg-launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    let dump = || format!("--- stdout ---\n{stdout}\n--- stderr ---\n{stderr}");
    assert!(out.status.success(), "launch failed ({}):\n{}", out.status, dump());
    assert!(
        stderr.contains("scripted kill"),
        "rank 1 never hit its kill script:\n{}",
        dump()
    );
    assert!(
        stdout.contains("recovering the job"),
        "parent never recovered the job:\n{}",
        dump()
    );
    assert!(
        stdout.contains("matches the single-process run"),
        "recovered job failed verification:\n{}",
        dump()
    );

    // No leftover children: nothing on the system still carries this
    // test's marker in its environment (the parent reaped every child it
    // killed, and the relaunched ranks exited before the parent did).
    let mut leftovers = Vec::new();
    if let Ok(entries) = std::fs::read_dir("/proc") {
        for e in entries.flatten() {
            let name = e.file_name();
            let Some(pid) = name.to_str().filter(|s| s.bytes().all(|b| b.is_ascii_digit()))
            else {
                continue;
            };
            if let Ok(env) = std::fs::read(e.path().join("environ")) {
                if env
                    .split(|&b| b == 0)
                    .any(|kv| kv == marker.as_bytes())
                {
                    leftovers.push(pid.to_string());
                }
            }
        }
    }
    assert!(
        leftovers.is_empty(),
        "leftover ttg-launch children still running: pids {leftovers:?}\n{}",
        dump()
    );
}
