//! `ttg-launch`: multi-process launcher for TTG applications (DESIGN §9).
//!
//! The parent process spawns one OS process per rank (re-executing its own
//! binary in child mode), hands each a file-based rendezvous directory, and
//! waits under a watchdog. Every child connects its rank through
//! [`RemoteHandle::connect`], runs the *same* SPMD application code with
//! `TransportSpec::Remote`, and writes the tiles its rank owns to
//! `result-rank{r}.bin`. The parent then runs the identical problem on the
//! in-process fabric and checks the union of the children's tiles against
//! that reference — bit-exact for Cholesky (fixed accumulation chains),
//! within 1e-9 for BSPMM (streaming-reducer fold order is arrival order).
//!
//! ```text
//! ttg-launch --ranks 4 --transport uds cholesky
//! ttg-launch --ranks 4 --transport tcp bspmm
//! ```

use std::collections::HashMap;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::time::{Duration, Instant};

use ttg_comm::{FaultPlan, TransportSpec};
use ttg_linalg::{Dist2D, Tile, TiledMatrix};
use ttg_sparse::{generate, YukawaParams};
use ttg_transport::{RemoteHandle, TransportKind};

const ENV_RANK: &str = "TTG_LAUNCH_RANK";
const ENV_RANKS: &str = "TTG_LAUNCH_RANKS";
const ENV_DIR: &str = "TTG_LAUNCH_DIR";
const ENV_TRANSPORT: &str = "TTG_LAUNCH_TRANSPORT";
const ENV_APP: &str = "TTG_LAUNCH_APP";
const ENV_WORKERS: &str = "TTG_LAUNCH_WORKERS";
const ENV_NT: &str = "TTG_LAUNCH_NT";
const ENV_NB: &str = "TTG_LAUNCH_NB";
const ENV_FAULTS: &str = "TTG_LAUNCH_FAULTS";

/// Seed shared by every process so parent and children build the same input.
const INPUT_SEED: u64 = 42;

fn main() {
    if std::env::var_os(ENV_RANK).is_some() {
        child_main();
    } else {
        parent_main();
    }
}

// ---------------------------------------------------------------- options

struct Opts {
    app: String,
    ranks: usize,
    workers: usize,
    transport: TransportKind,
    nt: usize,
    nb: usize,
    timeout: Duration,
    /// Fault spec forwarded verbatim to every child (`FaultPlan::parse`
    /// syntax). Remote mode accepts targeted `kill=r@n` scripts only;
    /// probabilistic faults are refused up front — the fabric would
    /// reject them with a TTG045 anyway, but failing in the parent gives
    /// one clear message instead of N child stack traces.
    faults: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: ttg-launch [--ranks N] [--workers W] [--transport tcp|uds] \
         [--nt T] [--nb B] [--timeout-secs S] [--faults SPEC] {{cholesky|bspmm}}\n\
         SPEC is FaultPlan syntax, e.g. seed=7,kill=1@200,recover=64 — \
         remote mode accepts kill=r@n scripts only (no drop/dup/reorder/delay)"
    );
    std::process::exit(2);
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        app: String::new(),
        ranks: 4,
        workers: 2,
        transport: TransportKind::Uds,
        nt: 8,
        nb: 16,
        timeout: Duration::from_secs(240),
        faults: String::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut take = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{what} expects a value");
                usage()
            })
        };
        match a.as_str() {
            "--ranks" => opts.ranks = parse_num(&take("--ranks")),
            "--workers" => opts.workers = parse_num(&take("--workers")),
            "--nt" => opts.nt = parse_num(&take("--nt")),
            "--nb" => opts.nb = parse_num(&take("--nb")),
            "--timeout-secs" => {
                opts.timeout = Duration::from_secs(parse_num(&take("--timeout-secs")) as u64)
            }
            "--faults" => opts.faults = take("--faults"),
            "--transport" => {
                let v = take("--transport");
                match TransportKind::parse(&v) {
                    Some(TransportKind::InProc) | None => {
                        eprintln!("--transport must be tcp or uds for a multi-process job");
                        usage();
                    }
                    Some(k) => opts.transport = k,
                }
            }
            "--help" | "-h" => usage(),
            app if !app.starts_with('-') && opts.app.is_empty() => opts.app = app.to_string(),
            other => {
                eprintln!("unknown argument '{other}'");
                usage();
            }
        }
    }
    if opts.app != "cholesky" && opts.app != "bspmm" {
        eprintln!("application must be 'cholesky' or 'bspmm'");
        usage();
    }
    if opts.ranks == 0 {
        eprintln!("--ranks must be at least 1");
        usage();
    }
    if !opts.faults.is_empty() {
        match FaultPlan::parse(&opts.faults) {
            Err(e) => {
                eprintln!("ttg-launch: {e}");
                usage();
            }
            Ok(plan) => {
                if !plan.is_kill_only() {
                    eprintln!(
                        "ttg-launch: probabilistic faults (drop/dup/reorder/delay) have no \
                         meaning over a kernel-reliable socket and are refused in remote \
                         mode (TTG045); use kill=r@n scripts"
                    );
                    usage();
                }
                if plan.kills.iter().any(|k| k.rank == 0) {
                    eprintln!(
                        "ttg-launch: kill=0 is not recoverable in remote mode: rank 0 \
                         coordinates the job (TTG045)"
                    );
                    usage();
                }
                if let Some(k) = plan.kills.iter().find(|k| k.rank >= opts.ranks) {
                    eprintln!(
                        "ttg-launch: kill={}@{} targets a rank outside --ranks {}",
                        k.rank, k.after_packets, opts.ranks
                    );
                    usage();
                }
            }
        }
    }
    opts
}

/// The fault spec with every `kill=` field removed: the relaunched job
/// must not re-fire the script and die again.
fn strip_kills(spec: &str) -> String {
    spec.split(',')
        .filter(|f| !f.trim_start().starts_with("kill="))
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_num(s: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("'{s}' is not a number");
        usage()
    })
}

// ----------------------------------------------------------------- parent

fn parent_main() {
    let opts = parse_opts();
    let dir = rendezvous_dir().unwrap_or_else(|e| {
        eprintln!("ttg-launch: cannot create rendezvous directory: {e}");
        std::process::exit(1);
    });
    let exe = std::env::current_exe().unwrap_or_else(|e| {
        eprintln!("ttg-launch: cannot locate own binary: {e}");
        std::process::exit(1);
    });
    println!(
        "ttg-launch: {} on {} ranks over {}, rendezvous {}",
        opts.app,
        opts.ranks,
        opts.transport,
        dir.display()
    );

    let mut faults = opts.faults.clone();
    let mut outcome = run_job(&opts, &exe, &dir, &faults);
    if let JobOutcome::RankDied(r) = outcome {
        if faults.contains("kill=") {
            // Remote recovery is job-level restart (DESIGN §13): the
            // in-process fabric restores a rank from its snapshot, but a
            // dead OS process takes its address space with it, so the
            // parent reaps the whole job, clears every stale per-rank
            // result, and re-runs once with the kill script stripped.
            let mut removed = 0usize;
            for t in 0..opts.ranks {
                let f = dir.join(format!("result-rank{t}.bin"));
                if f.exists() {
                    let _ = std::fs::remove_file(&f);
                    removed += 1;
                }
            }
            // The rendezvous dir also holds attempt-1 socket/addr files
            // whose peers are dead; start attempt 2 from an empty dir.
            let _ = std::fs::remove_dir_all(&dir);
            if let Err(e) = std::fs::create_dir(&dir) {
                eprintln!("ttg-launch: cannot recreate rendezvous directory: {e}");
                std::process::exit(1);
            }
            faults = strip_kills(&faults);
            println!(
                "ttg-launch: rank {r} died; recovering the job — reaped all children, \
                 removed {removed} stale result files, relaunching without kill scripts"
            );
            outcome = run_job(&opts, &exe, &dir, &faults);
        }
    }
    match outcome {
        JobOutcome::AllExited => {}
        JobOutcome::RankDied(_) | JobOutcome::WatchdogExpired => {
            eprintln!("ttg-launch: at least one rank failed; skipping verification");
            let _ = std::fs::remove_dir_all(&dir);
            std::process::exit(1);
        }
    }

    let ok = match opts.app.as_str() {
        "cholesky" => verify_cholesky(&dir, &opts),
        _ => verify_bspmm(&dir, &opts),
    };
    let _ = std::fs::remove_dir_all(&dir);
    if !ok {
        std::process::exit(1);
    }
    println!(
        "ttg-launch: {} across {} processes over {} matches the single-process run",
        opts.app, opts.ranks, opts.transport
    );
}

enum JobOutcome {
    /// Every rank exited cleanly.
    AllExited,
    /// This rank exited abnormally (scripted kill, crash); the rest of
    /// the job was killed and reaped — no zombies survive this variant.
    RankDied(usize),
    /// The watchdog expired; the remaining ranks were killed and reaped.
    WatchdogExpired,
}

/// Spawn one child per rank and babysit them until they all exit, a rank
/// dies, or the watchdog fires. On any non-clean outcome every remaining
/// child is killed and waited on before returning.
fn run_job(opts: &Opts, exe: &Path, dir: &Path, faults: &str) -> JobOutcome {
    let mut children: Vec<Child> = Vec::with_capacity(opts.ranks);
    for r in 0..opts.ranks {
        let mut cmd = Command::new(exe);
        cmd.env(ENV_RANK, r.to_string())
            .env(ENV_RANKS, opts.ranks.to_string())
            .env(ENV_DIR, dir)
            .env(ENV_TRANSPORT, opts.transport.to_string())
            .env(ENV_APP, &opts.app)
            .env(ENV_WORKERS, opts.workers.to_string())
            .env(ENV_NT, opts.nt.to_string())
            .env(ENV_NB, opts.nb.to_string());
        if !faults.is_empty() {
            cmd.env(ENV_FAULTS, faults);
        }
        match cmd.spawn() {
            Ok(c) => children.push(c),
            Err(e) => {
                eprintln!("ttg-launch: spawn of rank {r} failed: {e}");
                reap(&mut children);
                return JobOutcome::RankDied(r);
            }
        }
    }

    // Watchdog: a hung rank (lost handshake, deadlocked termination) must
    // fail the launch, not wedge it.
    let deadline = Instant::now() + opts.timeout;
    let mut pending: Vec<(usize, Child)> = children.drain(..).enumerate().collect();
    while !pending.is_empty() {
        if Instant::now() > deadline {
            eprintln!(
                "ttg-launch: watchdog expired after {:?}; killing {} remaining ranks",
                opts.timeout,
                pending.len()
            );
            let mut rest: Vec<Child> = pending.into_iter().map(|(_, c)| c).collect();
            reap(&mut rest);
            return JobOutcome::WatchdogExpired;
        }
        let mut died: Option<usize> = None;
        pending.retain_mut(|(r, c)| match c.try_wait() {
            Ok(Some(status)) => {
                if !status.success() {
                    eprintln!("ttg-launch: rank {r} exited with {status}");
                    died.get_or_insert(*r);
                }
                false
            }
            Ok(None) => true,
            Err(e) => {
                eprintln!("ttg-launch: waiting on rank {r} failed: {e}");
                died.get_or_insert(*r);
                false
            }
        });
        if let Some(r) = died {
            // A dead rank can never reach quiescence, so don't make its
            // peers grind through retry budgets: take the job down now.
            let mut rest: Vec<Child> = pending.into_iter().map(|(_, c)| c).collect();
            reap(&mut rest);
            return JobOutcome::RankDied(r);
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    JobOutcome::AllExited
}

fn reap(children: &mut [Child]) {
    for c in children.iter_mut() {
        let _ = c.kill();
    }
    for c in children.iter_mut() {
        let _ = c.wait();
    }
}

fn rendezvous_dir() -> std::io::Result<PathBuf> {
    let base = std::env::temp_dir();
    for salt in 0.. {
        let dir = base.join(format!("ttg-launch-{}-{salt}", std::process::id()));
        match std::fs::create_dir(&dir) {
            Ok(()) => return Ok(dir),
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
            Err(e) => return Err(e),
        }
    }
    unreachable!()
}

/// Cholesky: the accumulation chains fix the floating-point order, so the
/// multi-process factor must match the in-process one bit for bit.
fn verify_cholesky(dir: &Path, opts: &Opts) -> bool {
    let a = TiledMatrix::random_spd(opts.nt, opts.nb, INPUT_SEED);
    let (l_ref, _) =
        ttg_apps::cholesky::ttg::run(&a, &cholesky_cfg(opts, TransportSpec::InProc, None));

    let mut seen = 0usize;
    for r in 0..opts.ranks {
        let recs = match read_records(&dir.join(format!("result-rank{r}.bin"))) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("ttg-launch: reading rank {r} results failed: {e}");
                return false;
            }
        };
        for rec in &recs {
            let reference = l_ref.tile(rec.i, rec.j);
            if reference.data().len() != rec.data.len()
                || reference
                    .data()
                    .iter()
                    .zip(&rec.data)
                    .any(|(x, y)| x.to_bits() != y.to_bits())
            {
                eprintln!(
                    "ttg-launch: tile ({}, {}) from rank {r} differs from the \
                     single-process factor",
                    rec.i, rec.j
                );
                return false;
            }
        }
        seen += recs.len();
    }
    let expect = opts.nt * (opts.nt + 1) / 2;
    if seen != expect {
        eprintln!("ttg-launch: {seen} factor tiles collected, expected {expect}");
        return false;
    }
    println!("ttg-launch: {seen} factor tiles bit-identical across ranks");
    true
}

/// BSPMM: each C(i,j) accumulator folds a fixed multiset of GEMM products
/// in arrival order, so compare within a tight tolerance and require the
/// exact same set of product tiles.
fn verify_bspmm(dir: &Path, opts: &Opts) -> bool {
    let y = generate(&bspmm_params());
    let a = &y.matrix;
    let (c_ref, _) = ttg_apps::bspmm::ttg::run(a, a, &bspmm_cfg(opts, TransportSpec::InProc, None));
    let reference: HashMap<(usize, usize), &Tile> = c_ref.iter().map(|(&k, t)| (k, t)).collect();

    let mut seen = 0usize;
    for r in 0..opts.ranks {
        let recs = match read_records(&dir.join(format!("result-rank{r}.bin"))) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("ttg-launch: reading rank {r} results failed: {e}");
                return false;
            }
        };
        for rec in &recs {
            let Some(reference) = reference.get(&(rec.i, rec.j)) else {
                eprintln!(
                    "ttg-launch: rank {r} produced tile ({}, {}) absent from the \
                     single-process product",
                    rec.i, rec.j
                );
                return false;
            };
            let worst = reference
                .data()
                .iter()
                .zip(&rec.data)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f64, f64::max);
            if reference.data().len() != rec.data.len() || worst > 1e-9 {
                eprintln!(
                    "ttg-launch: tile ({}, {}) from rank {r} deviates by {worst:.3e}",
                    rec.i, rec.j
                );
                return false;
            }
        }
        seen += recs.len();
    }
    if seen != reference.len() {
        eprintln!(
            "ttg-launch: {seen} product tiles collected, expected {}",
            reference.len()
        );
        return false;
    }
    println!("ttg-launch: {seen} product tiles match across ranks");
    true
}

// ------------------------------------------------------------------ child

fn child_env(name: &str) -> String {
    std::env::var(name).unwrap_or_else(|_| {
        eprintln!("ttg-launch child: {name} not set");
        std::process::exit(2);
    })
}

fn child_main() {
    let me: usize = parse_num(&child_env(ENV_RANK));
    let opts = Opts {
        app: child_env(ENV_APP),
        ranks: parse_num(&child_env(ENV_RANKS)),
        workers: parse_num(&child_env(ENV_WORKERS)),
        transport: TransportKind::parse(&child_env(ENV_TRANSPORT)).unwrap_or_else(|| {
            eprintln!("ttg-launch child: bad {ENV_TRANSPORT}");
            std::process::exit(2);
        }),
        nt: parse_num(&child_env(ENV_NT)),
        nb: parse_num(&child_env(ENV_NB)),
        timeout: Duration::ZERO,
        faults: String::new(),
    };
    let dir = PathBuf::from(child_env(ENV_DIR));
    let faults = std::env::var(ENV_FAULTS).ok().map(|spec| {
        FaultPlan::parse(&spec).unwrap_or_else(|e| {
            eprintln!("ttg-launch child rank {me}: {e}");
            std::process::exit(2);
        })
    });

    let handle = RemoteHandle::connect(opts.transport, me, opts.ranks, &dir).unwrap_or_else(|e| {
        eprintln!("ttg-launch child rank {me}: transport bring-up failed: {e}");
        std::process::exit(3);
    });
    let spec = TransportSpec::Remote(handle);

    let (records, report) = match opts.app.as_str() {
        "cholesky" => {
            let a = TiledMatrix::random_spd(opts.nt, opts.nb, INPUT_SEED);
            let (l, report) = ttg_apps::cholesky::ttg::run(&a, &cholesky_cfg(&opts, spec, faults));
            // Keep the lower-triangle tiles this rank owns; the rest of the
            // local output matrix stayed zero (their RESULT ran elsewhere).
            let dist = Dist2D::for_ranks(opts.ranks);
            let mut recs = Vec::new();
            for i in 0..opts.nt {
                for j in 0..=i {
                    if dist.owner(i, j) == me {
                        recs.push(record(i, j, l.tile(i, j)));
                    }
                }
            }
            (recs, report)
        }
        _ => {
            let y = generate(&bspmm_params());
            let a = &y.matrix;
            let (c, report) = ttg_apps::bspmm::ttg::run(a, a, &bspmm_cfg(&opts, spec, faults));
            // In remote mode the product holds exactly the tiles this rank
            // accumulated.
            let recs = c.iter().map(|(&(i, j), t)| record(i, j, t)).collect();
            (recs, report)
        }
    };

    if !report.comm_errors.is_empty() {
        for e in &report.comm_errors {
            eprintln!("ttg-launch child rank {me}: comm error: {e}");
        }
        std::process::exit(4);
    }
    if !report.stuck.is_empty() {
        eprintln!(
            "ttg-launch child rank {me}: {} stuck keys at quiescence",
            report.stuck.len()
        );
        std::process::exit(5);
    }

    if let Err(e) = write_records(&dir.join(format!("result-rank{me}.bin")), &records) {
        eprintln!("ttg-launch child rank {me}: writing results failed: {e}");
        std::process::exit(6);
    }
    println!(
        "ttg-launch child rank {me}: {} tasks, {} owned tiles, {} B over the wire",
        report.tasks,
        records.len(),
        report.comm.transport_tx_bytes
    );
}

fn cholesky_cfg(
    opts: &Opts,
    transport: TransportSpec,
    faults: Option<FaultPlan>,
) -> ttg_apps::cholesky::ttg::Config {
    ttg_apps::cholesky::ttg::Config {
        ranks: opts.ranks,
        workers: opts.workers,
        backend: ttg_parsec::backend(),
        trace: false,
        priorities: true,
        faults,
        transport,
    }
}

fn bspmm_cfg(
    opts: &Opts,
    transport: TransportSpec,
    faults: Option<FaultPlan>,
) -> ttg_apps::bspmm::ttg::Config {
    ttg_apps::bspmm::ttg::Config {
        ranks: opts.ranks,
        workers: opts.workers,
        backend: ttg_parsec::backend(),
        trace: false,
        // Zero drop tolerance: every planned product tile is kept, so the
        // multi-process union must equal the reference key set exactly.
        drop_tol: 0.0,
        faults,
        transport,
    }
}

fn bspmm_params() -> YukawaParams {
    let mut p = YukawaParams::small();
    p.atoms = 60;
    p.target_tile = 32;
    p.seed = INPUT_SEED;
    p
}

// ------------------------------------------------------------- result I/O
//
// `result-rank{r}.bin` is a sequence of records, all integers u32 LE:
// `i j rows cols` followed by `rows*cols` f64 LE values (column-major,
// as stored by `Tile`). Written to a temp name and renamed so a crashing
// child never leaves a plausible-looking partial file.

struct TileRecord {
    i: usize,
    j: usize,
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

fn record(i: usize, j: usize, t: &Tile) -> TileRecord {
    TileRecord {
        i,
        j,
        rows: t.rows(),
        cols: t.cols(),
        data: t.data().to_vec(),
    }
}

fn write_records(path: &Path, recs: &[TileRecord]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    let mut buf: Vec<u8> = Vec::new();
    for r in recs {
        for v in [r.i as u32, r.j as u32, r.rows as u32, r.cols as u32] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        for x in &r.data {
            buf.extend_from_slice(&x.to_le_bytes());
        }
    }
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(&buf)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)
}

fn read_records(path: &Path) -> std::io::Result<Vec<TileRecord>> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    let mut recs = Vec::new();
    let mut off = 0usize;
    let short = || std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "truncated record");
    while off < bytes.len() {
        if bytes.len() - off < 16 {
            return Err(short());
        }
        let word =
            |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().expect("4 bytes")) as usize;
        let (i, j, rows, cols) = (word(off), word(off + 4), word(off + 8), word(off + 12));
        off += 16;
        let n = rows * cols;
        if bytes.len() - off < n * 8 {
            return Err(short());
        }
        let data: Vec<f64> = (0..n)
            .map(|k| {
                let o = off + k * 8;
                f64::from_le_bytes(bytes[o..o + 8].try_into().expect("8 bytes"))
            })
            .collect();
        off += n * 8;
        recs.push(TileRecord {
            i,
            j,
            rows,
            cols,
            data,
        });
    }
    Ok(recs)
}
