//! # ttg-parsec — the PaRSEC-like TTG backend
//!
//! Mirrors the paper's PaRSEC backend (§II-D): the runtime **owns the data**
//! flowing through the graph (rank-local consumers share reference-counted
//! handles, copy-on-write only when a mutating consumer coexists with
//! others), the **split-metadata** RMA protocol is available, broadcasts are
//! serialized once per destination process, task **priorities** reach the
//! scheduler, and scheduling uses per-worker deques with work stealing.
//!
//! The crate also provides a small **PTG** (Parameterized Task Graph)
//! interface in [`ptg`], the PaRSEC-native programming model the paper cites
//! as TTG's main influence. The DPLASMA-like Cholesky comparator is written
//! directly against it.

#![warn(missing_docs)]

pub mod ptg;

use ttg_core::{BackendSpec, LocalPass};
use ttg_runtime::SchedulerKind;

/// Construct the PaRSEC-like backend configuration.
pub fn backend() -> BackendSpec {
    BackendSpec {
        name: "parsec",
        scheduler: SchedulerKind::WorkStealing,
        local_pass: LocalPass::Share,
        supports_splitmd: true,
        optimized_broadcast: true,
        honor_priorities: true,
        // Lean communication path: one-sided transfers, completion
        // callbacks (paper: "flexible new interface ... to efficiently
        // organize communication").
        msg_overhead_ns: 600,
        task_overhead_ns: 250,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn backend_has_parsec_traits() {
        let b = super::backend();
        assert_eq!(b.name, "parsec");
        assert!(b.supports_splitmd);
        assert!(b.honor_priorities);
        assert!(b.optimized_broadcast);
        assert_eq!(b.local_pass, ttg_core::LocalPass::Share);
    }
}
