//! A minimal Parameterized Task Graph (PTG) interface.
//!
//! PTG is PaRSEC's native programming model and the direct ancestor of TTG
//! (paper §I: "this idea builds on the concept of the Parameterized Task
//! Graph"). Computation is organized into **task classes** parameterized by
//! a key; the number of inputs of each task instance is known algebraically
//! from its key, so activation is a simple countdown rather than TTG's
//! slot-matching. The DPLASMA-like dense-linear-algebra comparators are
//! written against this interface.
//!
//! The runtime reuses the shared substrate: the simulated fabric for
//! inter-rank active messages and the work-stealing worker pools.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use ttg_comm::{Fabric, Packet, ReadBuf, StatsSnapshot, WriteBuf};
use ttg_core::trace::{Dep, TaskEvent, TraceRecorder};
use ttg_core::types::{Data, Key};
use ttg_runtime::{Quiescence, SchedulerKind, WorkerPool};
use ttg_telemetry::{Counter, MetricKey};

/// Context handed to PTG task bodies for emitting downstream data.
pub struct PtgCtx<'a, K: Key, V: Data> {
    rt: &'a Arc<RtInner<K, V>>,
    rank: usize,
    task_id: u64,
}

impl<'a, K: Key, V: Data> PtgCtx<'a, K, V> {
    /// Send `v` as one input of task `key` of `class`.
    pub fn send(&self, class: usize, key: K, v: V) {
        self.rt.deliver(class, key, v, self.task_id, self.rank);
    }

    /// Rank executing the current task.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn n_ranks(&self) -> usize {
        self.rt.fabric.num_ranks()
    }
}

type BodyFn<K, V> = Arc<dyn Fn(&K, Vec<V>, &PtgCtx<'_, K, V>) + Send + Sync>;

/// A task class: a family of tasks indexed by `K`.
pub struct TaskClass<K: Key, V: Data> {
    /// Class name (traces).
    pub name: &'static str,
    /// Number of inputs task `k` waits for (known algebraically).
    pub n_deps: Arc<dyn Fn(&K) -> usize + Send + Sync>,
    /// Rank owning task `k`.
    pub owner: Arc<dyn Fn(&K) -> usize + Send + Sync>,
    /// Task priority (native PaRSEC priority support).
    pub priority: Arc<dyn Fn(&K) -> i32 + Send + Sync>,
    /// Modelled cost (ns) of task `k`, for trace projection.
    pub cost: Arc<dyn Fn(&K) -> u64 + Send + Sync>,
    /// Task body.
    pub body: BodyFn<K, V>,
}

struct PendingCnt<V> {
    vals: Vec<V>,
    deps: Vec<Dep>,
}

struct RtInner<K: Key, V: Data> {
    classes: Vec<TaskClass<K, V>>,
    // Per (class, rank) activation tables.
    tables: Vec<Vec<Mutex<HashMap<K, PendingCnt<V>>>>>,
    fabric: Arc<Fabric>,
    pools: Vec<WorkerPool>,
    quiescence: Arc<Quiescence>,
    trace: Option<TraceRecorder>,
    next_task: AtomicU64,
    tasks_run: AtomicU64,
    // Per-rank activation counters, registered under "backend" in the
    // fabric's telemetry registry (countdown hit zero → task launched).
    activations: Vec<Counter>,
}

impl<K: Key, V: Data> RtInner<K, V> {
    fn deliver(self: &Arc<Self>, class: usize, key: K, v: V, from_task: u64, src_rank: usize) {
        let owner = (self.classes[class].owner)(&key) % self.fabric.num_ranks();
        if owner == src_rank {
            self.insert(
                class,
                owner,
                key,
                v,
                Dep {
                    from_task,
                    bytes: 0,
                    src_rank,
                    msg: 0,
                },
            );
        } else {
            // from_task(8) + class(4) + key + value.
            let mut b = WriteBuf::with_capacity(12 + key.wire_size() + v.wire_size());
            b.put_u64(from_task);
            b.put_u32(class as u32);
            key.encode(&mut b);
            v.encode(&mut b);
            self.fabric.count_serialization();
            if let Err(e) = self
                .fabric
                .send_am(src_rank, owner, class as u32, b.into_vec())
            {
                self.fabric.record_error(e.into());
            }
        }
    }

    fn insert(self: &Arc<Self>, class: usize, rank: usize, key: K, v: V, dep: Dep) {
        let ready = {
            let mut table = self.tables[class][rank].lock();
            let entry = table.entry(key.clone()).or_insert_with(|| PendingCnt {
                vals: Vec::new(),
                deps: Vec::new(),
            });
            entry.vals.push(v);
            entry.deps.push(dep);
            let need = (self.classes[class].n_deps)(&key);
            assert!(
                entry.vals.len() <= need,
                "PTG class {} key {:?}: more inputs than n_deps={}",
                self.classes[class].name,
                key,
                need
            );
            if entry.vals.len() == need {
                Some(table.remove(&key).unwrap())
            } else {
                None
            }
        };
        if let Some(entry) = ready {
            self.launch(class, rank, key, entry);
        }
    }

    fn launch(self: &Arc<Self>, class: usize, rank: usize, key: K, entry: PendingCnt<V>) {
        let rt = Arc::clone(self);
        let task_id = self.next_task.fetch_add(1, Ordering::Relaxed);
        let prio = (self.classes[class].priority)(&key);
        self.activations[rank].inc();
        self.pools[rank].submit(ttg_runtime::Job::with_priority(prio, move || {
            let ctx = PtgCtx {
                rt: &rt,
                rank,
                task_id,
            };
            let t0 = Instant::now();
            {
                #[cfg(feature = "telemetry")]
                let _span = ttg_telemetry::span_for_rank(rank, "task", rt.classes[class].name)
                    .arg("task", task_id);
                (rt.classes[class].body)(&key, entry.vals, &ctx);
            }
            let measured = t0.elapsed().as_nanos() as u64;
            rt.tasks_run.fetch_add(1, Ordering::Relaxed);
            if let Some(tr) = &rt.trace {
                tr.record(TaskEvent {
                    id: task_id,
                    node: class as u32,
                    name: rt.classes[class].name,
                    rank,
                    priority: prio,
                    cost_ns: {
                        let c = (rt.classes[class].cost)(&key);
                        if c == 0 {
                            measured
                        } else {
                            c
                        }
                    },
                    deps: entry.deps,
                });
            }
        }));
    }
}

/// Report of a PTG execution.
#[derive(Debug)]
pub struct PtgReport {
    /// Wall-clock time to quiescence.
    pub elapsed: Duration,
    /// Fabric counters.
    pub comm: StatsSnapshot,
    /// Tasks executed.
    pub tasks: u64,
    /// Trace (when enabled).
    pub trace: Option<Vec<TaskEvent>>,
    /// Full telemetry snapshot (comm, sched, backend subsystems).
    pub telemetry: ttg_telemetry::Snapshot,
    /// Structured communication failures recorded during the run.
    pub comm_errors: Vec<ttg_comm::CommError>,
}

/// A running PTG program.
pub struct PtgRuntime<K: Key, V: Data> {
    inner: Arc<RtInner<K, V>>,
    comm_threads: Vec<std::thread::JoinHandle<()>>,
    started: Instant,
}

impl<K: Key, V: Data> PtgRuntime<K, V> {
    /// Launch `classes` over `ranks × workers` with optional tracing.
    pub fn new(classes: Vec<TaskClass<K, V>>, ranks: usize, workers: usize, trace: bool) -> Self {
        Self::with_faults(classes, ranks, workers, trace, None)
    }

    /// Launch with a fault-injection plan installed on the fabric (chaos
    /// testing; `None` = perfect network).
    pub fn with_faults(
        classes: Vec<TaskClass<K, V>>,
        ranks: usize,
        workers: usize,
        trace: bool,
        faults: Option<ttg_comm::FaultPlan>,
    ) -> Self {
        let fabric = Fabric::with_faults(ranks, faults);
        let quiescence = Arc::new(Quiescence::new());
        let pools = (0..ranks)
            .map(|r| {
                WorkerPool::with_telemetry(
                    workers,
                    SchedulerKind::WorkStealing,
                    Arc::clone(&quiescence),
                    &format!("ptg{r}"),
                    Some((fabric.telemetry(), r)),
                )
            })
            .collect();
        let activations = (0..ranks)
            .map(|r| {
                fabric
                    .telemetry()
                    .counter(MetricKey::ranked(r, "backend", "activations"))
            })
            .collect();
        let tables = classes
            .iter()
            .map(|_| (0..ranks).map(|_| Mutex::new(HashMap::new())).collect())
            .collect();
        let inner = Arc::new(RtInner {
            classes,
            tables,
            fabric: Arc::clone(&fabric),
            pools,
            quiescence,
            trace: if trace {
                Some(TraceRecorder::new())
            } else {
                None
            },
            next_task: AtomicU64::new(1),
            tasks_run: AtomicU64::new(0),
            activations,
        });

        let mut comm_threads = Vec::with_capacity(ranks);
        for r in 0..ranks {
            let rx = fabric.take_receiver(r);
            let rt = Arc::clone(&inner);
            comm_threads.push(std::thread::spawn(move || {
                while let Ok(pkt) = rx.recv() {
                    match pkt {
                        Packet::Am {
                            handler,
                            from,
                            seq,
                            payload,
                        } => {
                            // Reliable-delivery gate: duplicates never
                            // reach insert() (count-based activation would
                            // double-fire on a duplicate input).
                            if !rt.fabric.rx_accept(r, from, seq) {
                                continue;
                            }
                            let decoded = (|| -> Result<_, ttg_comm::WireError> {
                                let mut rd = ReadBuf::new(&payload);
                                let from_task = rd.get_u64()?;
                                let class = rd.get_u32()? as usize;
                                let key = K::decode(&mut rd)?;
                                let bytes = rd.remaining() as u64;
                                let v = V::decode(&mut rd)?;
                                Ok((from_task, class, key, bytes, v))
                            })();
                            match decoded {
                                Ok((from_task, class, key, bytes, v)) => {
                                    rt.insert(
                                        class,
                                        r,
                                        key,
                                        v,
                                        Dep {
                                            from_task,
                                            bytes,
                                            src_rank: from,
                                            msg: 0,
                                        },
                                    );
                                }
                                Err(e) => {
                                    rt.fabric.record_error(ttg_comm::CommError {
                                        kind: ttg_comm::CommErrorKind::DeliveryFailed,
                                        from: Some(from),
                                        to: Some(r),
                                        handler: Some(handler),
                                        seq: (seq != 0).then_some(seq),
                                        detail: e.to_string(),
                                    });
                                }
                            }
                            rt.fabric.packet_processed();
                        }
                        Packet::Shutdown => break,
                    }
                }
            }));
        }

        PtgRuntime {
            inner,
            comm_threads,
            started: Instant::now(),
        }
    }

    /// Inject an input for task `key` of `class` (external seed).
    pub fn seed(&self, class: usize, key: K, v: V) {
        let owner = (self.inner.classes[class].owner)(&key) % self.inner.fabric.num_ranks();
        self.inner.insert(
            class,
            owner,
            key,
            v,
            Dep {
                from_task: 0,
                bytes: 0,
                src_rank: owner,
                msg: 0,
            },
        );
    }

    /// Wait for quiescence, shut down, and report.
    pub fn finish(self) -> PtgReport {
        loop {
            if self.inner.fabric.packets_in_flight() == 0
                && self.inner.quiescence.is_quiescent()
                && self.inner.fabric.packets_in_flight() == 0
            {
                break;
            }
            std::thread::sleep(Duration::from_micros(50));
        }
        let elapsed = self.started.elapsed();
        self.inner.fabric.shutdown_all();
        for t in self.comm_threads {
            t.join().expect("ptg comm thread panicked");
        }
        for p in &self.inner.pools {
            p.shutdown();
        }
        PtgReport {
            elapsed,
            comm: self.inner.fabric.stats().snapshot(),
            tasks: self.inner.tasks_run.load(Ordering::Relaxed),
            trace: self.inner.trace.as_ref().map(|t| t.take()),
            telemetry: self.inner.fabric.telemetry().snapshot(),
            comm_errors: self.inner.fabric.take_errors(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fib_classes(sink: Arc<Mutex<Vec<(u64, i64)>>>) -> Vec<TaskClass<u64, i64>> {
        // Class 0: chain task k consumes one value, forwards k+1 until 10.
        let chain = TaskClass {
            name: "chain",
            n_deps: Arc::new(|_| 1),
            owner: Arc::new(|k: &u64| *k as usize),
            priority: Arc::new(|_| 0),
            cost: Arc::new(|_| 0),
            body: Arc::new(move |k, vals, ctx: &PtgCtx<'_, u64, i64>| {
                let v = vals[0] + 1;
                if *k < 10 {
                    ctx.send(0, k + 1, v);
                } else {
                    ctx.send(1, 0, v);
                }
            }),
        };
        let done = TaskClass {
            name: "done",
            n_deps: Arc::new(|_| 1),
            owner: Arc::new(|_| 0),
            priority: Arc::new(|_| 0),
            cost: Arc::new(|_| 0),
            body: Arc::new(move |k, vals, _ctx: &PtgCtx<'_, u64, i64>| {
                sink.lock().push((*k, vals[0]));
            }),
        };
        vec![chain, done]
    }

    #[test]
    fn chain_runs_across_ranks() {
        let sink = Arc::new(Mutex::new(Vec::new()));
        let rt = PtgRuntime::new(fib_classes(Arc::clone(&sink)), 3, 2, false);
        rt.seed(0, 0, 100);
        let report = rt.finish();
        assert_eq!(report.tasks, 12); // 11 chain tasks + 1 done
        assert_eq!(*sink.lock(), vec![(0, 111)]);
        assert!(report.comm.am_count > 0); // chain hops cross ranks
    }

    #[test]
    fn multi_dep_join() {
        // Class 0 tasks send into one class-1 task that needs 4 inputs.
        let sink = Arc::new(Mutex::new(Vec::new()));
        let sink2 = Arc::clone(&sink);
        let producer = TaskClass {
            name: "produce",
            n_deps: Arc::new(|_| 1),
            owner: Arc::new(|k: &u64| *k as usize),
            priority: Arc::new(|_| 0),
            cost: Arc::new(|_| 0),
            body: Arc::new(|k, vals: Vec<i64>, ctx: &PtgCtx<'_, u64, i64>| {
                ctx.send(1, 99, vals[0] * (*k as i64 + 1));
            }),
        };
        let join = TaskClass {
            name: "join",
            n_deps: Arc::new(|_| 4),
            owner: Arc::new(|_| 1),
            priority: Arc::new(|_| 0),
            cost: Arc::new(|_| 0),
            body: Arc::new(move |_k, vals: Vec<i64>, _ctx: &PtgCtx<'_, u64, i64>| {
                sink2.lock().push(vals.iter().sum::<i64>());
            }),
        };
        let rt = PtgRuntime::new(vec![producer, join], 2, 2, true);
        for k in 0..4u64 {
            rt.seed(0, k, 10);
        }
        let report = rt.finish();
        assert_eq!(report.tasks, 5);
        assert_eq!(*sink.lock(), vec![10 + 20 + 30 + 40]);
        let trace = report.trace.unwrap();
        assert_eq!(trace.len(), 5);
        let join_ev = trace.iter().find(|e| e.name == "join").unwrap();
        assert_eq!(join_ev.deps.len(), 4);
    }
}
