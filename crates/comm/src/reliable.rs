//! Reliable active-message delivery: sequence numbers, receive-side
//! deduplication, and sender-side retransmission state.
//!
//! When a [`FaultPlan`](crate::FaultPlan) is installed on a fabric, every
//! inter-rank AM is assigned a per-link sequence number and held by the
//! sender until acknowledged. The receiver runs a sliding anti-replay
//! window ([`SeqWindow`]) per incoming link: the first copy of a sequence
//! number is *fresh* (delivered, acked), every later copy — an injected
//! duplicate, a spurious retransmit, a reordered stray — is a *duplicate*
//! and is dropped before it can double-fire a task. Exactly-once **logical**
//! delivery therefore holds no matter what the physical layer does, and the
//! termination detectors (the executor's in-flight counter, Safra's message
//! balance) count logical messages only.
//!
//! A packet reordered so far that it falls behind the window is treated as
//! a duplicate; its sender never sees an ack and eventually exhausts the
//! retry budget, converting the loss into a structured
//! [`CommError`](crate::CommError) instead of a silent hang. Window sizing
//! is therefore a liveness/metadata trade-off, not a correctness one — see
//! `DESIGN.md` §8.
//!
//! Acknowledgements are **batched** ([`PendingAcks`], DESIGN §12): the
//! receiver accumulates accepted seqs into ranges and flushes them
//! piggybacked on reverse-direction data or on a short timer, so a burst
//! of messages is answered by one ranged ack instead of one ack each.
//! `FaultPlan::with_immediate_acks` restores the legacy
//! one-ack-per-message behavior for A/B measurement.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::buf::{ReadBuf, WireError, WriteBuf};

/// Bits of the wire sequence number reserved for the sender incarnation.
///
/// A recovered rank restarts its outgoing links from a snapshot, so the
/// same raw sequence numbers can be reassigned to *different* logical
/// messages after the restart. Receivers must not let their pre-crash
/// windows classify those as duplicates: the sender packs its incarnation
/// into the top [`INC_BITS`] bits of every wire seq, and a receiver that
/// sees a higher incarnation on a link resets that link's window and
/// switches to content-hash replay dedup (see `ContentLog`).
pub const INC_BITS: u32 = 8;
const INC_SHIFT: u32 = 64 - INC_BITS;

/// Wire-seq flag marking a *replayed* transmission: a copy re-driven by
/// recovery (the restore-time replay sweep, or a retransmission of an
/// entry that came back with a restored `LinkTx`). Replayed copies bypass
/// the killed-rank drop during a restore and are accounted differently
/// from live sends: their logical send was already retired, so a
/// delivered replay pre-pays its own `packet_processed` and a discarded
/// one touches nothing.
pub const REPLAY_BIT: u64 = 1 << (INC_SHIFT - 1);
const SEQ_MASK: u64 = REPLAY_BIT - 1;

/// Pack a sender incarnation into the high bits of a raw sequence number.
#[inline]
pub fn pack_seq(incarnation: u64, raw: u64) -> u64 {
    debug_assert!(raw <= SEQ_MASK, "raw seq overflows incarnation packing");
    (incarnation << INC_SHIFT) | (raw & SEQ_MASK)
}

/// Split a wire sequence number into (incarnation, raw seq). The replay
/// flag is stripped from the raw half; test it with [`is_replay`].
#[inline]
pub fn unpack_seq(wire: u64) -> (u64, u64) {
    (wire >> INC_SHIFT, wire & SEQ_MASK)
}

/// Whether a wire seq carries the replay marker.
#[inline]
pub fn is_replay(wire: u64) -> bool {
    wire & REPLAY_BIT != 0
}

/// Sequence numbers tracked per window: packets more than `WINDOW` behind
/// the link's high-water mark are classified duplicates unconditionally.
pub const WINDOW: usize = 1024;

const WORDS: usize = WINDOW / 64;

/// Receive-side anti-replay window for one incoming link (IPsec-style
/// ring bitmap).
///
/// Sequence numbers start at 1 and are *mostly* contiguous; the bitmap
/// absorbs reordering up to [`WINDOW`] packets deep.
#[derive(Debug, Clone)]
pub struct SeqWindow {
    /// Highest sequence number accepted so far (0 = none yet).
    high: u64,
    /// Ring bitmap over the last `WINDOW` sequence numbers.
    bits: [u64; WORDS],
}

impl Default for SeqWindow {
    fn default() -> Self {
        SeqWindow {
            high: 0,
            bits: [0; WORDS],
        }
    }
}

impl SeqWindow {
    /// Fresh window.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn bit(seq: u64) -> (usize, u64) {
        let slot = (seq % WINDOW as u64) as usize;
        (slot / 64, 1u64 << (slot % 64))
    }

    #[inline]
    fn test_and_set(&mut self, seq: u64) -> bool {
        let (w, m) = Self::bit(seq);
        let was = self.bits[w] & m != 0;
        self.bits[w] |= m;
        !was
    }

    /// Classify `seq`: `true` = first sighting (deliver it), `false` =
    /// duplicate or beyond-window stray (drop it).
    pub fn accept(&mut self, seq: u64) -> bool {
        if seq == 0 {
            // 0 is the "unsequenced" sentinel; never tracked.
            return true;
        }
        if seq + (WINDOW as u64) <= self.high {
            // Too old: its slot has been reused. Dropping a *fresh* packet
            // here is safe: the sender keeps retransmitting and, failing
            // that, reports retry-budget exhaustion.
            return false;
        }
        if seq > self.high {
            // Advance: clear the slots the window slides over.
            let start = self.high + 1;
            let clear_from = start.max(seq.saturating_sub(WINDOW as u64 - 1));
            for s in clear_from..seq {
                let (w, m) = Self::bit(s);
                self.bits[w] &= !m;
            }
            self.high = seq;
            let (w, m) = Self::bit(seq);
            self.bits[w] |= m;
            return true;
        }
        self.test_and_set(seq)
    }

    /// Highest sequence number accepted.
    pub fn high(&self) -> u64 {
        self.high
    }

    /// Serialize the full window state (high-water mark + ring bitmap)
    /// into a snapshot buffer.
    pub fn export(&self, b: &mut WriteBuf) {
        b.put_u64(self.high);
        for w in &self.bits {
            b.put_u64(*w);
        }
    }

    /// Restore a window previously written by [`SeqWindow::export`].
    pub fn import(r: &mut ReadBuf<'_>) -> Result<SeqWindow, WireError> {
        let high = r.get_u64()?;
        let mut bits = [0u64; WORDS];
        for w in bits.iter_mut() {
            *w = r.get_u64()?;
        }
        Ok(SeqWindow { high, bits })
    }
}

/// One unacknowledged logical packet held for retransmission.
#[derive(Debug, Clone)]
pub struct Unacked {
    /// Destination handler.
    pub handler: u32,
    /// Serialized payload (shared with in-flight physical copies).
    pub payload: Arc<Vec<u8>>,
    /// Retransmissions performed so far.
    pub attempts: u32,
    /// When the next retransmission fires.
    pub next_retry: Instant,
    /// Set by the receiver the moment a copy is accepted. The *ack*
    /// (removal from this table) may be lost by fault injection, but the
    /// delivered flag is ground truth: an exhausted entry that was
    /// delivered is dropped silently instead of reported lost.
    pub delivered: bool,
    /// Entry came back with a restored `LinkTx`: its transmissions carry
    /// [`REPLAY_BIT`] and its logical send is no longer on the in-flight
    /// ledger (the restore scan retired it).
    pub replayed: bool,
}

/// Sender-side state of one directed link.
#[derive(Debug, Default)]
pub struct LinkTx {
    /// Last sequence number assigned (numbers start at 1).
    pub next_seq: u64,
    /// In-flight (sent, unacked) packets by sequence number.
    pub unacked: HashMap<u64, Unacked>,
}

impl LinkTx {
    /// Assign the next sequence number on this link.
    pub fn assign_seq(&mut self) -> u64 {
        self.next_seq += 1;
        self.next_seq
    }

    /// Serialize the sender-side link state: the seq counter plus every
    /// in-flight packet (payload included — a restored rank must be able
    /// to retransmit without re-running the task that produced it).
    pub fn export(&self, b: &mut WriteBuf) {
        b.put_u64(self.next_seq);
        b.put_u64(self.unacked.len() as u64);
        for (seq, u) in &self.unacked {
            b.put_u64(*seq);
            b.put_u32(u.handler);
            b.put_u8(u.delivered as u8);
            b.put_len_bytes(&u.payload);
        }
    }

    /// Restore link state written by [`LinkTx::export`]. Retry clocks
    /// restart from `now`: attempts reset to zero and every entry is due
    /// immediately, so the post-restore progress sweep retransmits the
    /// whole in-flight set (receiver windows dedup any copies that did
    /// land before the crash).
    pub fn import(r: &mut ReadBuf<'_>, now: Instant) -> Result<LinkTx, WireError> {
        let next_seq = r.get_u64()?;
        let n = r.get_u64()? as usize;
        let mut unacked = HashMap::with_capacity(n);
        for _ in 0..n {
            let seq = r.get_u64()?;
            let handler = r.get_u32()?;
            let delivered = r.get_u8()? != 0;
            let payload = Arc::new(r.get_len_bytes()?.to_vec());
            unacked.insert(
                seq,
                Unacked {
                    handler,
                    payload,
                    attempts: 0,
                    next_retry: now,
                    delivered,
                    replayed: true,
                },
            );
        }
        Ok(LinkTx { next_seq, unacked })
    }
}

/// Full-history acceptance log for one incoming link, kept as coalesced
/// inclusive ranges. Remote-mode recovery replays a rank's *entire* send
/// log from sequence 1, which can fall arbitrarily far behind a sliding
/// [`SeqWindow`]; this log never forgets, so replayed packets classify
/// correctly no matter how old. In-order delivery keeps it at one range.
#[derive(Debug, Default, Clone)]
pub struct SeqLog {
    ranges: Vec<(u64, u64)>,
}

impl SeqLog {
    /// Fresh, empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `seq`; returns `true` if it was never seen before.
    pub fn insert(&mut self, seq: u64) -> bool {
        match self.ranges.binary_search_by(|&(first, last)| {
            if seq < first {
                std::cmp::Ordering::Greater
            } else if seq > last {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        }) {
            Ok(_) => false,
            Err(i) => {
                let glues_left = i > 0 && self.ranges[i - 1].1 + 1 == seq;
                let glues_right = i < self.ranges.len() && seq + 1 == self.ranges[i].0;
                match (glues_left, glues_right) {
                    (true, true) => {
                        self.ranges[i - 1].1 = self.ranges[i].1;
                        self.ranges.remove(i);
                    }
                    (true, false) => self.ranges[i - 1].1 = seq,
                    (false, true) => self.ranges[i].0 = seq,
                    (false, false) => self.ranges.insert(i, (seq, seq)),
                }
                true
            }
        }
    }

    /// Drop all history (the peer restarted with a fresh seq space).
    pub fn reset(&mut self) {
        self.ranges.clear();
    }

    /// Total distinct sequence numbers recorded.
    pub fn len(&self) -> u64 {
        self.ranges.iter().map(|&(f, l)| l - f + 1).sum()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Content hash of one logical message, as two independent 64-bit
/// splitmix streams folded over the handler and the payload parts. The
/// caller may pass the payload in several slices so that transient fields
/// (e.g. RMA region ids, which change when a task re-registers its output
/// after a restart) can be masked out of the logical identity.
pub fn content_key(handler: u32, parts: &[&[u8]]) -> u128 {
    let mut h1 = splitmix64(0xC0FF_EE00 ^ handler as u64);
    let mut h2 = splitmix64(0xDEAD_BEEF ^ handler as u64);
    for part in parts {
        for chunk in part.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            let w = u64::from_le_bytes(word);
            h1 = splitmix64(h1 ^ w);
            h2 = splitmix64(h2 ^ w.rotate_left(17));
        }
        h1 = splitmix64(h1 ^ part.len() as u64);
        h2 = splitmix64(h2 ^ (part.len() as u64).wrapping_mul(0x9E37));
    }
    ((h1 as u128) << 64) | h2 as u128
}

/// Multiset of content hashes of messages delivered on one incoming link.
///
/// After a sender restarts, re-executed tasks may pair old payloads with
/// new sequence numbers in a different order than the original run, so
/// seq identity alone cannot dedup the replay. The receiver instead
/// consults this log: a replayed message whose content was already
/// delivered is consumed (acked and dropped), anything genuinely new goes
/// through. Multiset semantics keep intentionally-repeated identical
/// messages correct: each delivery banks one token, each replay spends one.
#[derive(Debug, Default)]
pub struct ContentLog {
    seen: HashMap<u128, u32>,
    entries: u64,
}

impl ContentLog {
    /// Fresh, empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bank one delivery of `key`.
    pub fn record(&mut self, key: u128) {
        *self.seen.entry(key).or_insert(0) += 1;
        self.entries += 1;
    }

    /// Spend one prior delivery of `key` if any is banked; returns `true`
    /// when the message is a replay duplicate (drop it).
    pub fn consume(&mut self, key: u128) -> bool {
        match self.seen.get_mut(&key) {
            Some(n) => {
                *n -= 1;
                if *n == 0 {
                    self.seen.remove(&key);
                }
                self.entries -= 1;
                true
            }
            None => false,
        }
    }

    /// Deliveries currently banked.
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// Whether any deliveries are banked.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Serialize the multiset for a snapshot.
    pub fn export(&self, b: &mut WriteBuf) {
        b.put_u64(self.seen.len() as u64);
        for (k, n) in &self.seen {
            b.put_u64((*k >> 64) as u64);
            b.put_u64(*k as u64);
            b.put_u32(*n);
        }
    }

    /// Restore a multiset written by [`ContentLog::export`].
    pub fn import(r: &mut ReadBuf<'_>) -> Result<ContentLog, WireError> {
        let n = r.get_u64()? as usize;
        let mut seen = HashMap::with_capacity(n);
        let mut entries = 0u64;
        for _ in 0..n {
            let hi = r.get_u64()?;
            let lo = r.get_u64()?;
            let count = r.get_u32()?;
            entries += count as u64;
            seen.insert(((hi as u128) << 64) | lo as u128, count);
        }
        Ok(ContentLog { seen, entries })
    }
}

/// Receive-side accumulator of acknowledgements owed on one incoming link.
///
/// Instead of answering every accepted message with its own ack, the
/// receiver notes accepted sequence numbers here, coalescing them into
/// inclusive `(first, last)` ranges. The fabric flushes the accumulator
/// as one batched acknowledgement either **piggybacked** — right before
/// the next data message it sends back to that peer, so the ack rides the
/// same coalesced socket write — or on a short timer, so an idle receiver
/// still acks promptly. In-order traffic degenerates to a single
/// ever-growing range, i.e. a cumulative ack.
///
/// Duplicates are re-noted on arrival: if a flush was lost, the sender's
/// retransmit produces a dedup hit whose re-note re-arms the ack, so the
/// entry is always cleared eventually (liveness does not depend on any
/// single flush surviving).
#[derive(Debug, Default)]
pub struct PendingAcks {
    /// Inclusive, sorted, non-overlapping ranges of accepted seqs.
    ranges: Vec<(u64, u64)>,
    /// When the oldest currently-pending ack was noted (timer anchor).
    oldest: Option<Instant>,
    /// Flush ordinal, used to salt per-flush loss rolls deterministically.
    flushes: u64,
}

impl PendingAcks {
    /// Record that `seq` was accepted (or re-accepted) at `now`.
    pub fn note(&mut self, seq: u64, now: Instant) {
        if self.oldest.is_none() {
            self.oldest = Some(now);
        }
        // Binary search for the insertion point, then merge with the
        // neighbors if adjacent. The common case — in-order delivery —
        // extends the last range in O(1).
        match self.ranges.binary_search_by(|&(first, last)| {
            if seq < first {
                std::cmp::Ordering::Greater
            } else if seq > last {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        }) {
            Ok(_) => {} // already covered (duplicate re-note)
            Err(i) => {
                let glues_left = i > 0 && self.ranges[i - 1].1 + 1 == seq;
                let glues_right = i < self.ranges.len() && seq + 1 == self.ranges[i].0;
                match (glues_left, glues_right) {
                    (true, true) => {
                        self.ranges[i - 1].1 = self.ranges[i].1;
                        self.ranges.remove(i);
                    }
                    (true, false) => self.ranges[i - 1].1 = seq,
                    (false, true) => self.ranges[i].0 = seq,
                    (false, false) => self.ranges.insert(i, (seq, seq)),
                }
            }
        }
    }

    /// Whether any acks are pending.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Whether the oldest pending ack has waited at least `flush_after`.
    pub fn due(&self, now: Instant, flush_after: Duration) -> bool {
        match self.oldest {
            Some(t) => now.saturating_duration_since(t) >= flush_after,
            None => false,
        }
    }

    /// Drain the pending ranges for one flush, returning them together
    /// with the flush ordinal (for deterministic loss salting).
    pub fn take(&mut self) -> (Vec<(u64, u64)>, u64) {
        self.oldest = None;
        self.flushes += 1;
        (std::mem::take(&mut self.ranges), self.flushes)
    }

    /// Total sequence numbers covered by the pending ranges.
    pub fn pending(&self) -> u64 {
        self.ranges.iter().map(|&(f, l)| l - f + 1).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_stream_is_all_fresh() {
        let mut w = SeqWindow::new();
        for s in 1..=10_000u64 {
            assert!(w.accept(s), "seq {s} wrongly flagged duplicate");
        }
        assert_eq!(w.high(), 10_000);
    }

    #[test]
    fn duplicates_are_rejected_everywhere_in_window() {
        let mut w = SeqWindow::new();
        for s in 1..=100u64 {
            assert!(w.accept(s));
        }
        for s in 1..=100u64 {
            assert!(!w.accept(s), "duplicate of {s} accepted");
        }
        // Still accepts genuinely new traffic afterwards.
        assert!(w.accept(101));
    }

    #[test]
    fn reordering_within_window_is_fresh_exactly_once() {
        let mut w = SeqWindow::new();
        assert!(w.accept(5));
        assert!(w.accept(2));
        assert!(w.accept(1));
        assert!(w.accept(4));
        assert!(w.accept(3));
        for s in 1..=5u64 {
            assert!(!w.accept(s));
        }
    }

    #[test]
    fn wraparound_reuses_slots_correctly() {
        // Drive far past several multiples of WINDOW; the ring must keep
        // classifying fresh/duplicate correctly as slots are reused.
        let mut w = SeqWindow::new();
        let n = 5 * WINDOW as u64 + 13;
        for s in 1..=n {
            assert!(w.accept(s));
            assert!(!w.accept(s), "seq {s} double-accepted at wraparound");
        }
        // A duplicate from exactly one window back is recognized as such.
        assert!(!w.accept(n - WINDOW as u64 + 1));
    }

    #[test]
    fn reorder_beyond_window_is_dropped() {
        let mut w = SeqWindow::new();
        // Skip seq 1, deliver a window's worth after it.
        for s in 2..(2 + WINDOW as u64) {
            assert!(w.accept(s));
        }
        // Seq 1 now trails the window: classified duplicate (the sender's
        // retry budget converts this into a structured loss report).
        assert!(!w.accept(1));
    }

    #[test]
    fn gap_jump_larger_than_window_clears_stale_state() {
        let mut w = SeqWindow::new();
        for s in 1..=10u64 {
            assert!(w.accept(s));
        }
        let far = 10 + 3 * WINDOW as u64;
        assert!(w.accept(far));
        // Everything at or below far-WINDOW is now stale.
        assert!(!w.accept(10));
        // Within the new window but unseen: fresh.
        assert!(w.accept(far - 5));
        assert!(!w.accept(far - 5));
    }

    #[test]
    fn window_edge_is_exact() {
        // The stale cutoff is seq + WINDOW <= high: with high = WINDOW + 1,
        // seq 1 sits exactly at the cutoff and seq 2 exactly inside it.
        let mut w = SeqWindow::new();
        for s in 3..=(WINDOW as u64 + 1) {
            assert!(w.accept(s));
        }
        assert_eq!(w.high(), WINDOW as u64 + 1);
        // Never delivered, but its slot is out the back of the window:
        // dropped, and the sender's retry budget reports the loss.
        assert!(!w.accept(1), "stale seq at the exact edge accepted");
        // One inside the edge and never seen: fresh, exactly once.
        assert!(w.accept(2), "in-window seq at the exact edge dropped");
        assert!(!w.accept(2));
    }

    #[test]
    fn window_slide_racing_late_retransmit_never_double_delivers() {
        // Deliver seq 5, lose its ack, and let the link race ahead while
        // the sender retransmits. Wherever the retransmit lands relative
        // to the sliding edge — still in the bitmap, or already stale —
        // it must classify duplicate.
        let mut w = SeqWindow::new();
        for s in 1..=5u64 {
            assert!(w.accept(s));
        }
        // Slide until seq 5 is the oldest in-window slot (high - WINDOW + 1).
        for s in 6..=(4 + WINDOW as u64) {
            assert!(w.accept(s));
        }
        assert_eq!(w.high(), 4 + WINDOW as u64);
        assert!(
            !w.accept(5),
            "retransmit inside the window double-delivered"
        );
        // One more packet pushes seq 5 out the back: now the stale path
        // rejects it (and everything older).
        assert!(w.accept(5 + WINDOW as u64));
        assert!(
            !w.accept(5),
            "retransmit behind the window double-delivered"
        );
    }

    #[test]
    fn poison_then_slide_keeps_exactly_once_accounting() {
        // The retry-exhaustion path "poisons" a seq by claiming it through
        // the same window that delivery uses (the window is the arbiter:
        // whoever accepts first — delivery or loss accounting — wins).
        let mut w = SeqWindow::new();
        for s in 1..=6u64 {
            assert!(w.accept(s));
        }
        // Sender gives up on seq 7; the poison claim must win exactly once.
        assert!(w.accept(7), "poison claim rejected");
        // A straggler copy of 7 arriving after the poison: duplicate, so
        // the packet can never be counted both lost and delivered.
        assert!(!w.accept(7), "late copy delivered after poison");
        // The window slides on (including past 7 entirely); the straggler
        // stays rejected through both regimes and new traffic stays fresh.
        for s in 8..=(7 + WINDOW as u64) {
            assert!(w.accept(s), "fresh seq {s} rejected after poison");
        }
        assert!(!w.accept(7), "late copy delivered after poison and slide");
        assert!(w.accept(8 + WINDOW as u64));
    }

    #[test]
    fn sentinel_zero_is_always_accepted() {
        let mut w = SeqWindow::new();
        assert!(w.accept(0));
        assert!(w.accept(0));
        assert_eq!(w.high(), 0);
    }

    #[test]
    fn link_assigns_monotonic_seqs_from_one() {
        let mut l = LinkTx::default();
        assert_eq!(l.assign_seq(), 1);
        assert_eq!(l.assign_seq(), 2);
        assert_eq!(l.assign_seq(), 3);
    }

    #[test]
    fn pending_acks_coalesce_in_order_traffic_to_one_range() {
        let mut p = PendingAcks::default();
        let now = Instant::now();
        for s in 1..=100u64 {
            p.note(s, now);
        }
        assert_eq!(p.pending(), 100);
        let (ranges, flush_no) = p.take();
        assert_eq!(ranges, vec![(1, 100)]);
        assert_eq!(flush_no, 1);
        assert!(p.is_empty());
        assert_eq!(p.pending(), 0);
    }

    #[test]
    fn pending_acks_merge_out_of_order_and_ignore_duplicates() {
        let mut p = PendingAcks::default();
        let now = Instant::now();
        for s in [5u64, 1, 3, 2, 9, 4, 5, 1] {
            p.note(s, now);
        }
        assert_eq!(p.pending(), 6);
        let (ranges, _) = p.take();
        // 1..=5 glued from both sides (including the 3 bridging 2 and 4);
        // 9 stands alone.
        assert_eq!(ranges, vec![(1, 5), (9, 9)]);
    }

    #[test]
    fn pending_acks_due_tracks_oldest_note() {
        let mut p = PendingAcks::default();
        let t0 = Instant::now();
        assert!(!p.due(t0, Duration::from_micros(100)), "empty is never due");
        p.note(1, t0);
        assert!(!p.due(t0, Duration::from_micros(100)));
        assert!(p.due(t0 + Duration::from_micros(100), Duration::from_micros(100)));
        // A later note does not push the deadline out: oldest anchors it.
        p.note(2, t0 + Duration::from_micros(90));
        assert!(p.due(t0 + Duration::from_micros(100), Duration::from_micros(100)));
        // Take clears the anchor; the next note re-arms it.
        let _ = p.take();
        assert!(!p.due(t0 + Duration::from_secs(1), Duration::from_micros(100)));
        p.note(3, t0 + Duration::from_secs(1));
        assert!(p.due(t0 + Duration::from_secs(2), Duration::from_micros(100)));
    }

    #[test]
    fn pending_acks_flush_ordinal_increments() {
        let mut p = PendingAcks::default();
        let now = Instant::now();
        p.note(1, now);
        assert_eq!(p.take().1, 1);
        p.note(2, now);
        assert_eq!(p.take().1, 2);
    }

    fn roundtrip(w: &SeqWindow) -> SeqWindow {
        let mut b = WriteBuf::new();
        w.export(&mut b);
        SeqWindow::import(&mut ReadBuf::new(b.as_slice())).unwrap()
    }

    #[test]
    fn window_export_import_mid_slide_preserves_classification() {
        // Snapshot a window mid-slide — high-water mark deep into the
        // stream, with a scatter of holes still open inside the window —
        // and check the restored copy classifies exactly like the live one.
        let mut w = SeqWindow::new();
        for s in 1..=5_000u64 {
            if s % 7 != 0 || s + (WINDOW as u64) <= 5_000 {
                w.accept(s);
            }
        }
        let mut r = roundtrip(&w);
        assert_eq!(r.high(), w.high());
        for s in 1..=5_100u64 {
            assert_eq!(
                w.accept(s),
                r.accept(s),
                "restored window diverged at seq {s}"
            );
        }
    }

    #[test]
    fn poisoned_seq_state_survives_restore() {
        // A poison-claimed seq (the fabric marks an exhausted undelivered
        // seq as seen so a late stray cannot double-fire) must still read
        // as a duplicate after export/import.
        let mut w = SeqWindow::new();
        for s in 1..=50u64 {
            w.accept(s);
        }
        assert!(w.accept(60), "poison claim should be fresh");
        let mut r = roundtrip(&w);
        assert!(!r.accept(60), "poison claim lost across restore");
        assert!(r.accept(55), "unrelated in-window seq wrongly rejected");
    }

    #[test]
    fn replayed_retransmit_lands_in_restored_window_exactly_once() {
        // The recovery replay path: a window restored from a snapshot sees
        // the same seq retransmitted — pre-snapshot seqs must dedup, the
        // first post-snapshot copy must land, and only once.
        let mut w = SeqWindow::new();
        for s in 1..=10u64 {
            w.accept(s);
        }
        let mut r = roundtrip(&w);
        for s in 1..=10u64 {
            assert!(!r.accept(s), "pre-snapshot seq {s} replayed twice");
        }
        assert!(r.accept(11), "fresh replay must land");
        assert!(!r.accept(11), "fresh replay landed twice");
    }

    #[test]
    fn linktx_export_import_rearms_retries() {
        let mut tx = LinkTx::default();
        let now = Instant::now();
        for _ in 0..3 {
            let seq = tx.assign_seq();
            tx.unacked.insert(
                seq,
                Unacked {
                    handler: 7,
                    payload: Arc::new(vec![seq as u8; 4]),
                    attempts: 5,
                    next_retry: now + Duration::from_secs(100),
                    delivered: seq == 2,
                    replayed: false,
                },
            );
        }
        let mut b = WriteBuf::new();
        tx.export(&mut b);
        let got = LinkTx::import(&mut ReadBuf::new(b.as_slice()), now).unwrap();
        assert_eq!(got.next_seq, 3);
        assert_eq!(got.unacked.len(), 3);
        for (seq, u) in &got.unacked {
            assert_eq!(u.attempts, 0, "attempts must reset on restore");
            assert!(u.next_retry <= now, "restored entries must be due");
            assert_eq!(u.delivered, *seq == 2);
            assert_eq!(u.payload.as_slice(), &vec![*seq as u8; 4]);
        }
    }

    #[test]
    fn seq_log_full_history_never_forgets() {
        let mut log = SeqLog::new();
        for s in 1..=10_000u64 {
            assert!(log.insert(s));
        }
        // Unlike a sliding window, ancient seqs still classify as dups.
        assert!(!log.insert(1));
        assert!(!log.insert(5_000));
        assert_eq!(log.len(), 10_000);
        // Coalesced to a single range despite the probing above.
        assert!(log.insert(10_002));
        assert!(log.insert(10_001));
        assert_eq!(log.len(), 10_002);
    }

    #[test]
    fn content_log_multiset_semantics() {
        let mut log = ContentLog::new();
        let k = content_key(3, &[b"hello", b"world"]);
        log.record(k);
        log.record(k);
        assert!(log.consume(k));
        assert!(log.consume(k));
        assert!(!log.consume(k), "consumed more deliveries than banked");
        let other = content_key(3, &[b"helloworld"]);
        assert_ne!(k, other, "part boundaries must be part of the identity");
    }

    #[test]
    fn content_log_export_import_roundtrip() {
        let mut log = ContentLog::new();
        let a = content_key(1, &[b"a"]);
        let b_key = content_key(2, &[b"b"]);
        log.record(a);
        log.record(a);
        log.record(b_key);
        let mut b = WriteBuf::new();
        log.export(&mut b);
        let mut got = ContentLog::import(&mut ReadBuf::new(b.as_slice())).unwrap();
        assert_eq!(got.len(), 3);
        assert!(got.consume(a));
        assert!(got.consume(a));
        assert!(!got.consume(a));
        assert!(got.consume(b_key));
    }

    #[test]
    fn incarnation_packing_roundtrip() {
        for inc in [0u64, 1, 5, 255] {
            for raw in [1u64, 42, SEQ_MASK] {
                let wire = pack_seq(inc, raw);
                assert_eq!(unpack_seq(wire), (inc, raw));
            }
        }
        // Incarnation 0 leaves the wire seq identical to the raw seq, so
        // recovery-off runs are bit-identical on the wire.
        assert_eq!(pack_seq(0, 77), 77);
    }
}
