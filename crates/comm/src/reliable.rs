//! Reliable active-message delivery: sequence numbers, receive-side
//! deduplication, and sender-side retransmission state.
//!
//! When a [`FaultPlan`](crate::FaultPlan) is installed on a fabric, every
//! inter-rank AM is assigned a per-link sequence number and held by the
//! sender until acknowledged. The receiver runs a sliding anti-replay
//! window ([`SeqWindow`]) per incoming link: the first copy of a sequence
//! number is *fresh* (delivered, acked), every later copy — an injected
//! duplicate, a spurious retransmit, a reordered stray — is a *duplicate*
//! and is dropped before it can double-fire a task. Exactly-once **logical**
//! delivery therefore holds no matter what the physical layer does, and the
//! termination detectors (the executor's in-flight counter, Safra's message
//! balance) count logical messages only.
//!
//! A packet reordered so far that it falls behind the window is treated as
//! a duplicate; its sender never sees an ack and eventually exhausts the
//! retry budget, converting the loss into a structured
//! [`CommError`](crate::CommError) instead of a silent hang. Window sizing
//! is therefore a liveness/metadata trade-off, not a correctness one — see
//! `DESIGN.md` §8.
//!
//! Acknowledgements are **batched** ([`PendingAcks`], DESIGN §12): the
//! receiver accumulates accepted seqs into ranges and flushes them
//! piggybacked on reverse-direction data or on a short timer, so a burst
//! of messages is answered by one ranged ack instead of one ack each.
//! `FaultPlan::with_immediate_acks` restores the legacy
//! one-ack-per-message behavior for A/B measurement.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sequence numbers tracked per window: packets more than `WINDOW` behind
/// the link's high-water mark are classified duplicates unconditionally.
pub const WINDOW: usize = 1024;

const WORDS: usize = WINDOW / 64;

/// Receive-side anti-replay window for one incoming link (IPsec-style
/// ring bitmap).
///
/// Sequence numbers start at 1 and are *mostly* contiguous; the bitmap
/// absorbs reordering up to [`WINDOW`] packets deep.
#[derive(Debug, Clone)]
pub struct SeqWindow {
    /// Highest sequence number accepted so far (0 = none yet).
    high: u64,
    /// Ring bitmap over the last `WINDOW` sequence numbers.
    bits: [u64; WORDS],
}

impl Default for SeqWindow {
    fn default() -> Self {
        SeqWindow {
            high: 0,
            bits: [0; WORDS],
        }
    }
}

impl SeqWindow {
    /// Fresh window.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn bit(seq: u64) -> (usize, u64) {
        let slot = (seq % WINDOW as u64) as usize;
        (slot / 64, 1u64 << (slot % 64))
    }

    #[inline]
    fn test_and_set(&mut self, seq: u64) -> bool {
        let (w, m) = Self::bit(seq);
        let was = self.bits[w] & m != 0;
        self.bits[w] |= m;
        !was
    }

    /// Classify `seq`: `true` = first sighting (deliver it), `false` =
    /// duplicate or beyond-window stray (drop it).
    pub fn accept(&mut self, seq: u64) -> bool {
        if seq == 0 {
            // 0 is the "unsequenced" sentinel; never tracked.
            return true;
        }
        if seq + (WINDOW as u64) <= self.high {
            // Too old: its slot has been reused. Dropping a *fresh* packet
            // here is safe: the sender keeps retransmitting and, failing
            // that, reports retry-budget exhaustion.
            return false;
        }
        if seq > self.high {
            // Advance: clear the slots the window slides over.
            let start = self.high + 1;
            let clear_from = start.max(seq.saturating_sub(WINDOW as u64 - 1));
            for s in clear_from..seq {
                let (w, m) = Self::bit(s);
                self.bits[w] &= !m;
            }
            self.high = seq;
            let (w, m) = Self::bit(seq);
            self.bits[w] |= m;
            return true;
        }
        self.test_and_set(seq)
    }

    /// Highest sequence number accepted.
    pub fn high(&self) -> u64 {
        self.high
    }
}

/// One unacknowledged logical packet held for retransmission.
#[derive(Debug, Clone)]
pub struct Unacked {
    /// Destination handler.
    pub handler: u32,
    /// Serialized payload (shared with in-flight physical copies).
    pub payload: Arc<Vec<u8>>,
    /// Retransmissions performed so far.
    pub attempts: u32,
    /// When the next retransmission fires.
    pub next_retry: Instant,
    /// Set by the receiver the moment a copy is accepted. The *ack*
    /// (removal from this table) may be lost by fault injection, but the
    /// delivered flag is ground truth: an exhausted entry that was
    /// delivered is dropped silently instead of reported lost.
    pub delivered: bool,
}

/// Sender-side state of one directed link.
#[derive(Debug, Default)]
pub struct LinkTx {
    /// Last sequence number assigned (numbers start at 1).
    pub next_seq: u64,
    /// In-flight (sent, unacked) packets by sequence number.
    pub unacked: HashMap<u64, Unacked>,
}

impl LinkTx {
    /// Assign the next sequence number on this link.
    pub fn assign_seq(&mut self) -> u64 {
        self.next_seq += 1;
        self.next_seq
    }
}

/// Receive-side accumulator of acknowledgements owed on one incoming link.
///
/// Instead of answering every accepted message with its own ack, the
/// receiver notes accepted sequence numbers here, coalescing them into
/// inclusive `(first, last)` ranges. The fabric flushes the accumulator
/// as one batched acknowledgement either **piggybacked** — right before
/// the next data message it sends back to that peer, so the ack rides the
/// same coalesced socket write — or on a short timer, so an idle receiver
/// still acks promptly. In-order traffic degenerates to a single
/// ever-growing range, i.e. a cumulative ack.
///
/// Duplicates are re-noted on arrival: if a flush was lost, the sender's
/// retransmit produces a dedup hit whose re-note re-arms the ack, so the
/// entry is always cleared eventually (liveness does not depend on any
/// single flush surviving).
#[derive(Debug, Default)]
pub struct PendingAcks {
    /// Inclusive, sorted, non-overlapping ranges of accepted seqs.
    ranges: Vec<(u64, u64)>,
    /// When the oldest currently-pending ack was noted (timer anchor).
    oldest: Option<Instant>,
    /// Flush ordinal, used to salt per-flush loss rolls deterministically.
    flushes: u64,
}

impl PendingAcks {
    /// Record that `seq` was accepted (or re-accepted) at `now`.
    pub fn note(&mut self, seq: u64, now: Instant) {
        if self.oldest.is_none() {
            self.oldest = Some(now);
        }
        // Binary search for the insertion point, then merge with the
        // neighbors if adjacent. The common case — in-order delivery —
        // extends the last range in O(1).
        match self.ranges.binary_search_by(|&(first, last)| {
            if seq < first {
                std::cmp::Ordering::Greater
            } else if seq > last {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        }) {
            Ok(_) => {} // already covered (duplicate re-note)
            Err(i) => {
                let glues_left = i > 0 && self.ranges[i - 1].1 + 1 == seq;
                let glues_right = i < self.ranges.len() && seq + 1 == self.ranges[i].0;
                match (glues_left, glues_right) {
                    (true, true) => {
                        self.ranges[i - 1].1 = self.ranges[i].1;
                        self.ranges.remove(i);
                    }
                    (true, false) => self.ranges[i - 1].1 = seq,
                    (false, true) => self.ranges[i].0 = seq,
                    (false, false) => self.ranges.insert(i, (seq, seq)),
                }
            }
        }
    }

    /// Whether any acks are pending.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Whether the oldest pending ack has waited at least `flush_after`.
    pub fn due(&self, now: Instant, flush_after: Duration) -> bool {
        match self.oldest {
            Some(t) => now.saturating_duration_since(t) >= flush_after,
            None => false,
        }
    }

    /// Drain the pending ranges for one flush, returning them together
    /// with the flush ordinal (for deterministic loss salting).
    pub fn take(&mut self) -> (Vec<(u64, u64)>, u64) {
        self.oldest = None;
        self.flushes += 1;
        (std::mem::take(&mut self.ranges), self.flushes)
    }

    /// Total sequence numbers covered by the pending ranges.
    pub fn pending(&self) -> u64 {
        self.ranges.iter().map(|&(f, l)| l - f + 1).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_stream_is_all_fresh() {
        let mut w = SeqWindow::new();
        for s in 1..=10_000u64 {
            assert!(w.accept(s), "seq {s} wrongly flagged duplicate");
        }
        assert_eq!(w.high(), 10_000);
    }

    #[test]
    fn duplicates_are_rejected_everywhere_in_window() {
        let mut w = SeqWindow::new();
        for s in 1..=100u64 {
            assert!(w.accept(s));
        }
        for s in 1..=100u64 {
            assert!(!w.accept(s), "duplicate of {s} accepted");
        }
        // Still accepts genuinely new traffic afterwards.
        assert!(w.accept(101));
    }

    #[test]
    fn reordering_within_window_is_fresh_exactly_once() {
        let mut w = SeqWindow::new();
        assert!(w.accept(5));
        assert!(w.accept(2));
        assert!(w.accept(1));
        assert!(w.accept(4));
        assert!(w.accept(3));
        for s in 1..=5u64 {
            assert!(!w.accept(s));
        }
    }

    #[test]
    fn wraparound_reuses_slots_correctly() {
        // Drive far past several multiples of WINDOW; the ring must keep
        // classifying fresh/duplicate correctly as slots are reused.
        let mut w = SeqWindow::new();
        let n = 5 * WINDOW as u64 + 13;
        for s in 1..=n {
            assert!(w.accept(s));
            assert!(!w.accept(s), "seq {s} double-accepted at wraparound");
        }
        // A duplicate from exactly one window back is recognized as such.
        assert!(!w.accept(n - WINDOW as u64 + 1));
    }

    #[test]
    fn reorder_beyond_window_is_dropped() {
        let mut w = SeqWindow::new();
        // Skip seq 1, deliver a window's worth after it.
        for s in 2..(2 + WINDOW as u64) {
            assert!(w.accept(s));
        }
        // Seq 1 now trails the window: classified duplicate (the sender's
        // retry budget converts this into a structured loss report).
        assert!(!w.accept(1));
    }

    #[test]
    fn gap_jump_larger_than_window_clears_stale_state() {
        let mut w = SeqWindow::new();
        for s in 1..=10u64 {
            assert!(w.accept(s));
        }
        let far = 10 + 3 * WINDOW as u64;
        assert!(w.accept(far));
        // Everything at or below far-WINDOW is now stale.
        assert!(!w.accept(10));
        // Within the new window but unseen: fresh.
        assert!(w.accept(far - 5));
        assert!(!w.accept(far - 5));
    }

    #[test]
    fn window_edge_is_exact() {
        // The stale cutoff is seq + WINDOW <= high: with high = WINDOW + 1,
        // seq 1 sits exactly at the cutoff and seq 2 exactly inside it.
        let mut w = SeqWindow::new();
        for s in 3..=(WINDOW as u64 + 1) {
            assert!(w.accept(s));
        }
        assert_eq!(w.high(), WINDOW as u64 + 1);
        // Never delivered, but its slot is out the back of the window:
        // dropped, and the sender's retry budget reports the loss.
        assert!(!w.accept(1), "stale seq at the exact edge accepted");
        // One inside the edge and never seen: fresh, exactly once.
        assert!(w.accept(2), "in-window seq at the exact edge dropped");
        assert!(!w.accept(2));
    }

    #[test]
    fn window_slide_racing_late_retransmit_never_double_delivers() {
        // Deliver seq 5, lose its ack, and let the link race ahead while
        // the sender retransmits. Wherever the retransmit lands relative
        // to the sliding edge — still in the bitmap, or already stale —
        // it must classify duplicate.
        let mut w = SeqWindow::new();
        for s in 1..=5u64 {
            assert!(w.accept(s));
        }
        // Slide until seq 5 is the oldest in-window slot (high - WINDOW + 1).
        for s in 6..=(4 + WINDOW as u64) {
            assert!(w.accept(s));
        }
        assert_eq!(w.high(), 4 + WINDOW as u64);
        assert!(
            !w.accept(5),
            "retransmit inside the window double-delivered"
        );
        // One more packet pushes seq 5 out the back: now the stale path
        // rejects it (and everything older).
        assert!(w.accept(5 + WINDOW as u64));
        assert!(
            !w.accept(5),
            "retransmit behind the window double-delivered"
        );
    }

    #[test]
    fn poison_then_slide_keeps_exactly_once_accounting() {
        // The retry-exhaustion path "poisons" a seq by claiming it through
        // the same window that delivery uses (the window is the arbiter:
        // whoever accepts first — delivery or loss accounting — wins).
        let mut w = SeqWindow::new();
        for s in 1..=6u64 {
            assert!(w.accept(s));
        }
        // Sender gives up on seq 7; the poison claim must win exactly once.
        assert!(w.accept(7), "poison claim rejected");
        // A straggler copy of 7 arriving after the poison: duplicate, so
        // the packet can never be counted both lost and delivered.
        assert!(!w.accept(7), "late copy delivered after poison");
        // The window slides on (including past 7 entirely); the straggler
        // stays rejected through both regimes and new traffic stays fresh.
        for s in 8..=(7 + WINDOW as u64) {
            assert!(w.accept(s), "fresh seq {s} rejected after poison");
        }
        assert!(!w.accept(7), "late copy delivered after poison and slide");
        assert!(w.accept(8 + WINDOW as u64));
    }

    #[test]
    fn sentinel_zero_is_always_accepted() {
        let mut w = SeqWindow::new();
        assert!(w.accept(0));
        assert!(w.accept(0));
        assert_eq!(w.high(), 0);
    }

    #[test]
    fn link_assigns_monotonic_seqs_from_one() {
        let mut l = LinkTx::default();
        assert_eq!(l.assign_seq(), 1);
        assert_eq!(l.assign_seq(), 2);
        assert_eq!(l.assign_seq(), 3);
    }

    #[test]
    fn pending_acks_coalesce_in_order_traffic_to_one_range() {
        let mut p = PendingAcks::default();
        let now = Instant::now();
        for s in 1..=100u64 {
            p.note(s, now);
        }
        assert_eq!(p.pending(), 100);
        let (ranges, flush_no) = p.take();
        assert_eq!(ranges, vec![(1, 100)]);
        assert_eq!(flush_no, 1);
        assert!(p.is_empty());
        assert_eq!(p.pending(), 0);
    }

    #[test]
    fn pending_acks_merge_out_of_order_and_ignore_duplicates() {
        let mut p = PendingAcks::default();
        let now = Instant::now();
        for s in [5u64, 1, 3, 2, 9, 4, 5, 1] {
            p.note(s, now);
        }
        assert_eq!(p.pending(), 6);
        let (ranges, _) = p.take();
        // 1..=5 glued from both sides (including the 3 bridging 2 and 4);
        // 9 stands alone.
        assert_eq!(ranges, vec![(1, 5), (9, 9)]);
    }

    #[test]
    fn pending_acks_due_tracks_oldest_note() {
        let mut p = PendingAcks::default();
        let t0 = Instant::now();
        assert!(!p.due(t0, Duration::from_micros(100)), "empty is never due");
        p.note(1, t0);
        assert!(!p.due(t0, Duration::from_micros(100)));
        assert!(p.due(t0 + Duration::from_micros(100), Duration::from_micros(100)));
        // A later note does not push the deadline out: oldest anchors it.
        p.note(2, t0 + Duration::from_micros(90));
        assert!(p.due(t0 + Duration::from_micros(100), Duration::from_micros(100)));
        // Take clears the anchor; the next note re-arms it.
        let _ = p.take();
        assert!(!p.due(t0 + Duration::from_secs(1), Duration::from_micros(100)));
        p.note(3, t0 + Duration::from_secs(1));
        assert!(p.due(t0 + Duration::from_secs(2), Duration::from_micros(100)));
    }

    #[test]
    fn pending_acks_flush_ordinal_increments() {
        let mut p = PendingAcks::default();
        let now = Instant::now();
        p.note(1, now);
        assert_eq!(p.take().1, 1);
        p.note(2, now);
        assert_eq!(p.take().1, 2);
    }
}
