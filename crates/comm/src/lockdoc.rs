//! Lock-discipline annotations for the comm fabric, consumed by the
//! `ttg-check` lock-order analysis (diagnostics TTG050/TTG051).
//!
//! The fabric follows a **single-lock discipline**: with one documented
//! exception, no code path holds two of these mutexes at once. The
//! reliable-layer paths are written specifically to keep the dedup-window
//! locks and the per-link retransmit locks disjoint in time — `rx_accept`
//! takes the window lock as a statement temporary and drops it before
//! touching link state, and `progress()` collects retransmit candidates
//! under the link lock in a scoped block before consulting any window.
//!
//! These tables are the machine-checkable record of that discipline. If a
//! future change nests locks, it must add the `(outer, inner)` pair here —
//! and `ttg-check` will reject the addition if it closes a cycle.

/// Every mutex class in the fabric, by field name.
pub const LOCK_CLASSES: &[&str] = &[
    "fabric.errors",
    "fabric.receivers",
    "fabric.links",
    "fabric.windows",
    "fabric.delayq",
    "fabric.regions",
    "fabric.released",
    "fabric.rma_waiters",
    "fabric.barrier_entered",
    "fabric.barrier_released",
    "fabric.term",
    "fabric.idle_probe",
];

/// Permitted nestings, outer acquired first.
///
/// `drive_termination` refreshes the coordinator's own observation while
/// holding the termination state (`term` guard live across
/// `observe_local`, which locks `idle_probe`). That is the fabric's only
/// sanctioned two-lock hold.
pub const LOCK_ORDER: &[(&str, &str)] = &[("fabric.term", "fabric.idle_probe")];

/// Striped classes (one instance per rank or per directed link) and
/// whether holding two instances at once is permitted via ascending-index
/// acquisition. Neither is: no fabric path holds two links or two windows
/// simultaneously.
pub const STRIPED_LOCKS: &[(&str, bool)] = &[("fabric.links", false), ("fabric.windows", false)];
