//! Seeded, deterministic fault injection for the fabric.
//!
//! A [`FaultPlan`] describes how the simulated network misbehaves: per-link
//! probabilities of dropping, duplicating, delaying, or reordering packets,
//! plus targeted kill scripts ("rank `r` stops communicating after its
//! `n`-th packet"). Installing a plan on a [`Fabric`](crate::Fabric) also
//! activates the reliable-delivery layer (sequence numbers, acks,
//! retransmission with exponential backoff — see [`crate::reliable`]), so
//! applications keep exactly-once *logical* delivery while every physical
//! packet is at the mercy of the plan.
//!
//! Decisions are **stateless and deterministic**: each one is a pure hash
//! of `(seed, salt, link, seq, attempt)`, so a given packet identity always
//! suffers the same fate regardless of thread interleaving, and re-running
//! with the same seed reproduces the same fault pattern.
//!
//! Binaries opt in with a single flag parsed by [`FaultPlan::from_args`]:
//!
//! ```text
//! cholesky --faults seed=42,drop=0.05,dup=0.02,reorder=0.05
//! ```

use std::time::Duration;

use crate::fabric::Rank;

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit hash step.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Decision salts: every fault class rolls its own independent stream.
pub(crate) mod salt {
    /// Drop the physical packet.
    pub const DROP: u64 = 1;
    /// Duplicate the physical packet.
    pub const DUP: u64 = 2;
    /// Hold the packet for a long delay.
    pub const DELAY: u64 = 3;
    /// Hold the packet briefly so later packets overtake it.
    pub const REORDER: u64 = 4;
    /// Lose the acknowledgement (forces a spurious retransmit).
    pub const ACK: u64 = 5;
    /// Magnitude of an injected delay.
    pub const DELAY_LEN: u64 = 6;
}

/// Kill script: rank `rank` stops communicating (all packets to and from it
/// are silently dropped) once it has received `after_packets` sequenced
/// fabric packets — the simulation of a process death mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillScript {
    /// Rank to kill.
    pub rank: Rank,
    /// Sequenced packets the rank receives before dying.
    pub after_packets: u64,
}

/// Retransmission policy of the reliable-delivery layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Initial retransmission timeout; doubles per attempt.
    pub base: Duration,
    /// Per-attempt backoff ceiling.
    pub cap: Duration,
    /// Retransmissions before the packet is abandoned and reported as a
    /// [`CommError`](crate::CommError) (retry-budget exhaustion).
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base: Duration::from_micros(300),
            cap: Duration::from_millis(20),
            max_retries: 12,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retransmission attempt `attempt` (1-based).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = attempt.min(20);
        self.base
            .saturating_mul(1u32 << exp.min(16))
            .min(self.cap)
            .max(self.base)
    }
}

/// A deterministic description of network chaos for one execution.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of every decision hash.
    pub seed: u64,
    /// Per-packet probability of being dropped.
    pub drop: f64,
    /// Per-packet probability of being duplicated.
    pub dup: f64,
    /// Per-packet probability of a short hold that lets later packets
    /// overtake it (reordering).
    pub reorder: f64,
    /// Per-packet probability of a long delivery delay.
    pub delay: f64,
    /// Range of the long delay, microseconds (inclusive bounds).
    pub delay_us: (u64, u64),
    /// Targeted rank deaths.
    pub kills: Vec<KillScript>,
    /// Retransmission policy for the reliable layer.
    pub retry: RetryPolicy,
    /// Answer every accepted message with its own immediate ack (the
    /// pre-batching behavior) instead of accumulating ranged acks. Kept as
    /// an A/B lever for `bench_wire` and regression comparison.
    pub immediate_acks: bool,
    /// How long a pending batched ack may wait for a piggyback ride
    /// before the progress thread flushes it anyway.
    pub ack_flush: Duration,
    /// Checkpoint/restore recovery: `Some(n)` snapshots each rank's state
    /// every `n` accepted packets and, when a kill script fires, restores
    /// the rank from its last snapshot and replays logged messages instead
    /// of reporting retry-budget exhaustion. `None` (the default) keeps
    /// the PR 5 fail-and-report behavior.
    pub recover: Option<u64>,
}

impl FaultPlan {
    /// A plan with the given seed and no faults: enables the reliable
    /// layer (sequence numbers, acks) over a perfect network.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop: 0.0,
            dup: 0.0,
            reorder: 0.0,
            delay: 0.0,
            delay_us: (200, 800),
            kills: Vec::new(),
            retry: RetryPolicy::default(),
            immediate_acks: false,
            ack_flush: Duration::from_micros(100),
            recover: None,
        }
    }

    /// Set the drop probability.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop = p;
        self
    }

    /// Set the duplication probability.
    pub fn with_dup(mut self, p: f64) -> Self {
        self.dup = p;
        self
    }

    /// Set the reorder probability.
    pub fn with_reorder(mut self, p: f64) -> Self {
        self.reorder = p;
        self
    }

    /// Set the long-delay probability.
    pub fn with_delay(mut self, p: f64) -> Self {
        self.delay = p;
        self
    }

    /// Add a kill script.
    pub fn with_kill(mut self, rank: Rank, after_packets: u64) -> Self {
        self.kills.push(KillScript {
            rank,
            after_packets,
        });
        self
    }

    /// Set the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Revert to one immediate ack per accepted message (disables ack
    /// batching/piggybacking; the baseline side of `bench_wire`).
    pub fn with_immediate_acks(mut self) -> Self {
        self.immediate_acks = true;
        self
    }

    /// Set the batched-ack flush timer (ignored under immediate acks).
    pub fn with_ack_flush(mut self, flush: Duration) -> Self {
        self.ack_flush = flush;
        self
    }

    /// Enable checkpoint/restore recovery, snapshotting each rank every
    /// `every_packets` accepted packets.
    pub fn with_recovery(mut self, every_packets: u64) -> Self {
        self.recover = Some(every_packets.max(1));
        self
    }

    /// Whether the plan's only faults are targeted kills — no
    /// probabilistic link faults. Remote (multi-process) mode accepts
    /// exactly this shape: a real OS process can be killed and respawned,
    /// but per-packet dice have no consistent meaning across a socket the
    /// kernel already delivers reliably.
    pub fn is_kill_only(&self) -> bool {
        self.drop == 0.0 && self.dup == 0.0 && self.reorder == 0.0 && self.delay == 0.0
    }

    /// Whether the plan injects any fault at all (a pure reliable-layer
    /// plan rolls no dice).
    pub fn is_chaotic(&self) -> bool {
        self.drop > 0.0
            || self.dup > 0.0
            || self.reorder > 0.0
            || self.delay > 0.0
            || !self.kills.is_empty()
    }

    /// A uniform draw in `[0, 1)`, fully determined by the plan seed and
    /// the packet identity `(salt, link, seq, attempt)`.
    pub fn roll(&self, salt: u64, link: u64, seq: u64, attempt: u32) -> f64 {
        let h = mix(self.seed ^ mix(salt ^ mix(link ^ mix(seq ^ u64::from(attempt)))));
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Draw a delay duration for a packet held by the long-delay fault.
    pub fn delay_for(&self, link: u64, seq: u64, attempt: u32) -> Duration {
        let (lo, hi) = self.delay_us;
        let span = hi.saturating_sub(lo).max(1);
        let r = self.roll(salt::DELAY_LEN, link, seq, attempt);
        Duration::from_micros(lo + (r * span as f64) as u64)
    }

    /// Parse a `key=value` comma list, e.g.
    /// `seed=42,drop=0.05,dup=0.02,reorder=0.05,delay=0.01,kill=1@200,retries=8,rto_us=300`.
    ///
    /// Unknown keys are an error; every key is optional (an empty spec is a
    /// faultless reliable plan with seed 0).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::seeded(0);
        for field in spec.split(',').filter(|f| !f.trim().is_empty()) {
            let (k, v) = field
                .split_once('=')
                .ok_or_else(|| format!("fault spec field `{field}` is not key=value"))?;
            let (k, v) = (k.trim(), v.trim());
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 = v
                    .parse()
                    .map_err(|_| format!("fault spec: `{v}` is not a probability"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("fault spec: probability {p} outside [0,1]"));
                }
                Ok(p)
            };
            match k {
                "seed" => {
                    plan.seed = v
                        .parse()
                        .map_err(|_| format!("fault spec: bad seed `{v}`"))?
                }
                "drop" => plan.drop = prob(v)?,
                "dup" => plan.dup = prob(v)?,
                "reorder" => plan.reorder = prob(v)?,
                "delay" => plan.delay = prob(v)?,
                "kill" => {
                    let (r, n) = v
                        .split_once('@')
                        .ok_or_else(|| format!("fault spec: kill wants rank@packet, got `{v}`"))?;
                    plan.kills.push(KillScript {
                        rank: r
                            .parse()
                            .map_err(|_| format!("fault spec: bad kill rank `{r}`"))?,
                        after_packets: n
                            .parse()
                            .map_err(|_| format!("fault spec: bad kill packet count `{n}`"))?,
                    });
                }
                "retries" => {
                    plan.retry.max_retries = v
                        .parse()
                        .map_err(|_| format!("fault spec: bad retries `{v}`"))?
                }
                "rto_us" => {
                    plan.retry.base = Duration::from_micros(
                        v.parse()
                            .map_err(|_| format!("fault spec: bad rto_us `{v}`"))?,
                    )
                }
                "recover" => {
                    plan.recover = Some(
                        v.parse::<u64>()
                            .map_err(|_| format!("fault spec: bad recover interval `{v}`"))?
                            .max(1),
                    )
                }
                "acks" => match v {
                    "immediate" => plan.immediate_acks = true,
                    "batched" => plan.immediate_acks = false,
                    other => {
                        return Err(format!(
                            "fault spec: acks wants immediate or batched, got `{other}`"
                        ))
                    }
                },
                other => return Err(format!("fault spec: unknown key `{other}`")),
            }
        }
        Ok(plan)
    }

    /// Scan the process arguments for `--faults <spec>` or `--faults=<spec>`
    /// and parse it. Returns `None` when the flag is absent; a malformed
    /// spec aborts with a message (a typo'd chaos run must not silently run
    /// fault-free).
    pub fn from_args() -> Option<FaultPlan> {
        let mut args = std::env::args();
        while let Some(a) = args.next() {
            let spec = if a == "--faults" {
                args.next()
            } else {
                a.strip_prefix("--faults=").map(str::to_string)
            };
            if let Some(spec) = spec {
                match FaultPlan::parse(&spec) {
                    Ok(plan) => return Some(plan),
                    Err(e) => {
                        eprintln!("error: {e}");
                        std::process::exit(2);
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolls_are_deterministic_and_distinct() {
        let plan = FaultPlan::seeded(42);
        let a = plan.roll(salt::DROP, 3, 17, 0);
        assert_eq!(a, plan.roll(salt::DROP, 3, 17, 0));
        // Different salt, link, seq, or attempt gives a different draw.
        assert_ne!(a, plan.roll(salt::DUP, 3, 17, 0));
        assert_ne!(a, plan.roll(salt::DROP, 4, 17, 0));
        assert_ne!(a, plan.roll(salt::DROP, 3, 18, 0));
        assert_ne!(a, plan.roll(salt::DROP, 3, 17, 1));
        // Different seed changes the whole stream.
        assert_ne!(a, FaultPlan::seeded(43).roll(salt::DROP, 3, 17, 0));
    }

    #[test]
    fn rolls_are_roughly_uniform() {
        let plan = FaultPlan::seeded(7);
        let n = 10_000;
        let hits = (0..n)
            .filter(|&i| plan.roll(salt::DROP, 0, i, 0) < 0.1)
            .count();
        // 10% ± generous slack.
        assert!((800..1200).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn parse_full_spec() {
        let p = FaultPlan::parse(
            "seed=42,drop=0.05,dup=0.02,reorder=0.1,delay=0.01,kill=1@200,retries=8,rto_us=500",
        )
        .unwrap();
        assert_eq!(p.seed, 42);
        assert_eq!(p.drop, 0.05);
        assert_eq!(p.dup, 0.02);
        assert_eq!(p.reorder, 0.1);
        assert_eq!(p.delay, 0.01);
        assert_eq!(
            p.kills,
            vec![KillScript {
                rank: 1,
                after_packets: 200
            }]
        );
        assert_eq!(p.retry.max_retries, 8);
        assert_eq!(p.retry.base, Duration::from_micros(500));
        assert!(p.is_chaotic());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("drop=2.0").is_err());
        assert!(FaultPlan::parse("banana=1").is_err());
        assert!(FaultPlan::parse("drop").is_err());
        assert!(FaultPlan::parse("kill=3").is_err());
        assert!(FaultPlan::parse("acks=sometimes").is_err());
    }

    #[test]
    fn parse_ack_mode() {
        assert!(!FaultPlan::parse("seed=1").unwrap().immediate_acks);
        assert!(FaultPlan::parse("acks=immediate").unwrap().immediate_acks);
        assert!(!FaultPlan::parse("acks=batched").unwrap().immediate_acks);
    }

    #[test]
    fn empty_spec_is_faultless() {
        let p = FaultPlan::parse("seed=9").unwrap();
        assert!(!p.is_chaotic());
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let r = RetryPolicy {
            base: Duration::from_micros(100),
            cap: Duration::from_millis(2),
            max_retries: 10,
        };
        assert_eq!(r.backoff(1), Duration::from_micros(200));
        assert_eq!(r.backoff(2), Duration::from_micros(400));
        assert_eq!(r.backoff(3), Duration::from_micros(800));
        assert_eq!(r.backoff(10), Duration::from_millis(2));
    }
}
