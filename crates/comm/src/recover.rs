//! Pluggable snapshot persistence for checkpoint/restore recovery
//! (DESIGN §13).
//!
//! The fabric periodically exports each rank's recovery state — matching
//! tables, dedup windows, seq counters, and in-flight messages — as one
//! opaque byte blob per rank and hands it to a [`SnapshotSink`]. On rank
//! death the executor loads the last stored blob and restores from it; a
//! rank with no stored snapshot restores to empty state, which is also
//! correct (the sender-side replay logs cover the run from message one —
//! pure message-logging recovery, just slower).

use std::collections::HashMap;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::Mutex;

/// Where per-rank recovery snapshots live. `store` fully replaces the
/// previous snapshot for the rank; `load` returns the latest stored blob.
pub trait SnapshotSink: Send + Sync {
    /// Persist rank `rank`'s snapshot, replacing any previous one.
    fn store(&self, rank: usize, bytes: &[u8]) -> std::io::Result<()>;
    /// Load the latest snapshot for `rank` (`None` = never stored).
    fn load(&self, rank: usize) -> std::io::Result<Option<Vec<u8>>>;
}

/// In-memory sink (the test default: no filesystem traffic, inspectable).
#[derive(Default)]
pub struct MemorySnapshotSink {
    blobs: Mutex<HashMap<usize, Vec<u8>>>,
}

impl MemorySnapshotSink {
    /// Empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ranks with a stored snapshot (test introspection).
    pub fn stored_ranks(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.blobs.lock().keys().copied().collect();
        v.sort_unstable();
        v
    }
}

impl SnapshotSink for MemorySnapshotSink {
    fn store(&self, rank: usize, bytes: &[u8]) -> std::io::Result<()> {
        self.blobs.lock().insert(rank, bytes.to_vec());
        Ok(())
    }

    fn load(&self, rank: usize) -> std::io::Result<Option<Vec<u8>>> {
        Ok(self.blobs.lock().get(&rank).cloned())
    }
}

/// File-backed sink (the production default): one
/// `snapshot-rank{r}.bin` per rank under `dir`, written atomically
/// (tmp + rename) so a crash mid-write never corrupts the restore point.
pub struct FileSnapshotSink {
    dir: PathBuf,
}

impl FileSnapshotSink {
    /// Sink rooted at `dir` (created on first store if missing).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        FileSnapshotSink { dir: dir.into() }
    }

    fn path(&self, rank: usize) -> PathBuf {
        self.dir.join(format!("snapshot-rank{rank}.bin"))
    }
}

impl SnapshotSink for FileSnapshotSink {
    fn store(&self, rank: usize, bytes: &[u8]) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        let tmp = self.dir.join(format!(".snapshot-rank{rank}.tmp"));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, self.path(rank))
    }

    fn load(&self, rank: usize) -> std::io::Result<Option<Vec<u8>>> {
        match std::fs::read(self.path(rank)) {
            Ok(b) => Ok(Some(b)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// Shared handle alias used through configs.
pub type SharedSnapshotSink = Arc<dyn SnapshotSink>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_replaces_and_loads() {
        let s = MemorySnapshotSink::new();
        assert!(s.load(0).unwrap().is_none());
        s.store(0, b"one").unwrap();
        s.store(0, b"two").unwrap();
        assert_eq!(s.load(0).unwrap().unwrap(), b"two");
        assert_eq!(s.stored_ranks(), vec![0]);
    }

    #[test]
    fn file_sink_roundtrips_atomically() {
        let dir = std::env::temp_dir().join(format!("ttg-snap-test-{}", std::process::id()));
        let s = FileSnapshotSink::new(&dir);
        assert!(s.load(3).unwrap().is_none());
        s.store(3, b"blob").unwrap();
        assert_eq!(s.load(3).unwrap().unwrap(), b"blob");
        s.store(3, b"blob2").unwrap();
        assert_eq!(s.load(3).unwrap().unwrap(), b"blob2");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
