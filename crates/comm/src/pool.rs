//! Free-list recycling for hot-path wire buffers.
//!
//! Every active message used to allocate a fresh `Vec<u8>` on send and drop
//! it after delivery. The [`BufPool`] keeps a small sharded free-list of
//! retired buffers so steady-state traffic reuses allocations instead of
//! round-tripping through the global allocator. Shards are picked per
//! thread, so the common pattern — comm thread recycles what worker threads
//! acquired — degenerates to near-uncontended stack pushes/pops.
//!
//! The pool is deliberately bounded: buffers above [`MAX_POOLED_CAP`] are
//! dropped rather than cached (a single giant splitmd payload must not pin
//! a megabyte per shard forever), and each shard holds at most
//! [`SHARD_DEPTH`] buffers. Hit/miss/recycled/dropped counters are exposed
//! through [`pool_stats`] for the benchmark reports.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Number of independent free-lists; threads hash onto one at first use.
const SHARDS: usize = 8;

/// Maximum buffers retained per shard.
const SHARD_DEPTH: usize = 64;

/// Buffers with more capacity than this are dropped on recycle instead of
/// pooled, bounding resident memory at `SHARDS * SHARD_DEPTH * 1 MiB` worst
/// case (reached only if every pooled buffer grew to the cap).
const MAX_POOLED_CAP: usize = 1 << 20;

#[derive(Default)]
struct Shard {
    free: Mutex<Vec<Vec<u8>>>,
}

struct Pool {
    shards: [Shard; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
    recycled: AtomicU64,
    dropped: AtomicU64,
}

static POOL: Pool = Pool {
    shards: [
        Shard {
            free: Mutex::new(Vec::new()),
        },
        Shard {
            free: Mutex::new(Vec::new()),
        },
        Shard {
            free: Mutex::new(Vec::new()),
        },
        Shard {
            free: Mutex::new(Vec::new()),
        },
        Shard {
            free: Mutex::new(Vec::new()),
        },
        Shard {
            free: Mutex::new(Vec::new()),
        },
        Shard {
            free: Mutex::new(Vec::new()),
        },
        Shard {
            free: Mutex::new(Vec::new()),
        },
    ],
    hits: AtomicU64::new(0),
    misses: AtomicU64::new(0),
    recycled: AtomicU64::new(0),
    dropped: AtomicU64::new(0),
};

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

#[inline]
fn my_shard() -> usize {
    MY_SHARD.with(|s| *s)
}

/// Take a cleared buffer with at least `cap` capacity from the calling
/// thread's shard — stealing from sibling shards on a local miss, since
/// producers (workers) and recyclers (comm threads) are usually different
/// threads — falling back to a fresh allocation on pool miss.
pub fn acquire(cap: usize) -> Vec<u8> {
    let home = my_shard();
    let mut found = POOL.shards[home].free.lock().pop();
    if found.is_none() {
        for i in 1..SHARDS {
            let s = &POOL.shards[(home + i) % SHARDS];
            // try_lock: never stall the hot path on a contended sibling.
            if let Some(mut free) = s.free.try_lock() {
                if let Some(buf) = free.pop() {
                    found = Some(buf);
                    break;
                }
            }
        }
    }
    if let Some(mut buf) = found {
        POOL.hits.fetch_add(1, Ordering::Relaxed);
        if buf.capacity() < cap {
            buf.reserve(cap - buf.len());
        }
        return buf;
    }
    POOL.misses.fetch_add(1, Ordering::Relaxed);
    Vec::with_capacity(cap)
}

/// Return a retired buffer to the pool. The buffer is cleared; oversized
/// buffers are dropped, and overflow past the home shard's depth spills to
/// the first sibling with room (dropped only when the whole pool is full).
pub fn recycle(mut buf: Vec<u8>) {
    if buf.capacity() == 0 || buf.capacity() > MAX_POOLED_CAP {
        POOL.dropped.fetch_add(1, Ordering::Relaxed);
        return;
    }
    buf.clear();
    let home = my_shard();
    for i in 0..SHARDS {
        let s = &POOL.shards[(home + i) % SHARDS];
        let mut free = if i == 0 {
            s.free.lock()
        } else {
            match s.free.try_lock() {
                Some(f) => f,
                None => continue,
            }
        };
        if free.len() < SHARD_DEPTH {
            free.push(buf);
            POOL.recycled.fetch_add(1, Ordering::Relaxed);
            return;
        }
    }
    POOL.dropped.fetch_add(1, Ordering::Relaxed);
}

/// Point-in-time counters of the process-wide wire-buffer pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Acquires served from the free-list.
    pub hits: u64,
    /// Acquires that fell back to a fresh allocation.
    pub misses: u64,
    /// Buffers successfully returned to the free-list.
    pub recycled: u64,
    /// Buffers dropped on recycle (oversized or shard full).
    pub dropped: u64,
}

impl PoolStats {
    /// Fraction of acquires served from the pool, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Render the stats as a JSON object string.
    pub fn json(&self) -> String {
        format!(
            "{{\"hits\":{},\"misses\":{},\"recycled\":{},\"dropped\":{},\"hit_rate\":{:.4}}}",
            self.hits,
            self.misses,
            self.recycled,
            self.dropped,
            self.hit_rate()
        )
    }
}

/// Snapshot the process-wide pool counters.
pub fn pool_stats() -> PoolStats {
    PoolStats {
        hits: POOL.hits.load(Ordering::Relaxed),
        misses: POOL.misses.load(Ordering::Relaxed),
        recycled: POOL.recycled.load(Ordering::Relaxed),
        dropped: POOL.dropped.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_recycle_roundtrip() {
        let before = pool_stats();
        let mut buf = acquire(256);
        assert!(buf.capacity() >= 256);
        buf.extend_from_slice(&[1, 2, 3]);
        recycle(buf);
        let again = acquire(16);
        // The recycled buffer must come back cleared.
        assert!(again.is_empty());
        let after = pool_stats();
        assert!(after.recycled > before.recycled);
        assert!(after.hits + after.misses >= before.hits + before.misses + 2);
    }

    #[test]
    fn oversized_buffers_are_dropped() {
        let before = pool_stats();
        recycle(Vec::with_capacity(MAX_POOLED_CAP + 1));
        let after = pool_stats();
        assert_eq!(after.dropped, before.dropped + 1);
        assert_eq!(after.recycled, before.recycled);
    }

    #[test]
    fn zero_capacity_recycle_is_dropped() {
        let before = pool_stats();
        recycle(Vec::new());
        let after = pool_stats();
        assert_eq!(after.dropped, before.dropped + 1);
    }

    #[test]
    fn hit_rate_bounds() {
        let s = PoolStats {
            hits: 3,
            misses: 1,
            recycled: 0,
            dropped: 0,
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(PoolStats::default().hit_rate(), 0.0);
        assert!(s.json().contains("\"hits\":3"));
    }
}
