//! Simulated distributed communication fabric.
//!
//! The paper runs on MPI clusters; this module replaces the physical wire
//! with an in-process fabric of `n` logical **ranks**. Everything above the
//! wire is real: inter-rank messages are serialized into byte buffers and
//! travel through channels (the *eager* / active-message path), and large
//! payloads can be registered as memory **regions** and fetched one-sidedly
//! by the receiver (the *RMA* path used by the split-metadata protocol).
//!
//! RMA is emulated by letting the requesting rank read the registered region
//! directly, without involving the owner's CPU threads — exactly the property
//! real RDMA hardware provides. Once every expected consumer has fetched a
//! region it is released and its completion callback runs (the paper's
//! "sender is notified to release the source object").

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

/// Logical process rank within the fabric.
pub type Rank = usize;

/// Identifier of a registered RMA region, unique per fabric.
pub type RegionId = u64;

/// A packet travelling between ranks.
#[derive(Debug)]
pub enum Packet {
    /// Active message: invoke `handler` on the destination with `payload`.
    Am {
        /// Destination-side handler index (e.g. template-task id).
        handler: u32,
        /// Sending rank.
        from: Rank,
        /// Serialized message body.
        payload: Vec<u8>,
    },
    /// Orderly shutdown of the destination's progress loop.
    Shutdown,
}

struct Region {
    data: Arc<Vec<u8>>,
    remaining: usize,
    on_release: Option<Box<dyn FnOnce() + Send>>,
}

/// Aggregate communication counters for a fabric (all ranks).
#[derive(Debug, Default)]
pub struct FabricStats {
    /// Active messages sent between distinct ranks.
    pub am_count: AtomicU64,
    /// Bytes moved through active messages.
    pub am_bytes: AtomicU64,
    /// One-sided region fetches.
    pub rma_gets: AtomicU64,
    /// Bytes moved through RMA fetches.
    pub rma_bytes: AtomicU64,
    /// Messages delivered without leaving the rank.
    pub local_deliveries: AtomicU64,
    /// Number of serialization passes performed (copies into wire buffers).
    pub serializations: AtomicU64,
    /// Number of deep data copies performed by backends (clone-on-send).
    pub data_copies: AtomicU64,
}

/// Plain snapshot of [`FabricStats`] counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Active messages sent between distinct ranks.
    pub am_count: u64,
    /// Bytes moved through active messages.
    pub am_bytes: u64,
    /// One-sided region fetches.
    pub rma_gets: u64,
    /// Bytes moved through RMA fetches.
    pub rma_bytes: u64,
    /// Messages delivered without leaving the rank.
    pub local_deliveries: u64,
    /// Serialization passes.
    pub serializations: u64,
    /// Deep data copies by backends.
    pub data_copies: u64,
}

impl FabricStats {
    /// Capture the current counter values.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            am_count: self.am_count.load(Ordering::Relaxed),
            am_bytes: self.am_bytes.load(Ordering::Relaxed),
            rma_gets: self.rma_gets.load(Ordering::Relaxed),
            rma_bytes: self.rma_bytes.load(Ordering::Relaxed),
            local_deliveries: self.local_deliveries.load(Ordering::Relaxed),
            serializations: self.serializations.load(Ordering::Relaxed),
            data_copies: self.data_copies.load(Ordering::Relaxed),
        }
    }
}

impl StatsSnapshot {
    /// Total bytes that crossed rank boundaries (eager + RMA).
    pub fn total_bytes(&self) -> u64 {
        self.am_bytes + self.rma_bytes
    }
}

/// The in-process fabric connecting `n` ranks.
pub struct Fabric {
    n: usize,
    senders: Vec<Sender<Packet>>,
    receivers: Mutex<Vec<Option<Receiver<Packet>>>>,
    regions: Vec<Mutex<HashMap<RegionId, Region>>>,
    next_region: AtomicU64,
    barrier: Barrier,
    stats: FabricStats,
    in_flight: AtomicUsize,
}

impl Fabric {
    /// Create a fabric with `n` ranks.
    pub fn new(n: usize) -> Arc<Fabric> {
        assert!(n > 0, "fabric needs at least one rank");
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(Some(rx));
        }
        Arc::new(Fabric {
            n,
            senders,
            receivers: Mutex::new(receivers),
            regions: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            next_region: AtomicU64::new(1),
            barrier: Barrier::new(n),
            stats: FabricStats::default(),
            in_flight: AtomicUsize::new(0),
        })
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.n
    }

    /// Fabric-wide communication counters.
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// Take ownership of rank `rank`'s packet receiver. Panics if taken twice.
    pub fn take_receiver(&self, rank: Rank) -> Receiver<Packet> {
        self.receivers.lock()[rank]
            .take()
            .expect("receiver already taken for this rank")
    }

    /// Send an active message from `from` to `to`. Counts wire traffic only
    /// when the ranks differ; rank-local AMs are loopback deliveries.
    pub fn send_am(&self, from: Rank, to: Rank, handler: u32, payload: Vec<u8>) {
        if from != to {
            self.stats.am_count.fetch_add(1, Ordering::Relaxed);
            self.stats
                .am_bytes
                .fetch_add(payload.len() as u64, Ordering::Relaxed);
        } else {
            self.stats.local_deliveries.fetch_add(1, Ordering::Relaxed);
        }
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        self.senders[to]
            .send(Packet::Am {
                handler,
                from,
                payload,
            })
            .expect("fabric channel closed");
    }

    /// Mark a previously sent packet as fully processed (used by the
    /// termination detector to know when the fabric has drained).
    pub fn packet_processed(&self) {
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }

    /// Number of packets sent but not yet fully processed.
    pub fn packets_in_flight(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Deliver a shutdown packet to every rank.
    pub fn shutdown_all(&self) {
        for tx in &self.senders {
            let _ = tx.send(Packet::Shutdown);
        }
    }

    /// Register `data` as an RMA-readable region owned by `owner`.
    ///
    /// The region is released (and `on_release` runs) after `expected_gets`
    /// fetches. `expected_gets == 0` releases immediately.
    pub fn register_region(
        &self,
        owner: Rank,
        data: Arc<Vec<u8>>,
        expected_gets: usize,
        on_release: Option<Box<dyn FnOnce() + Send>>,
    ) -> RegionId {
        if expected_gets == 0 {
            if let Some(f) = on_release {
                f();
            }
            return 0;
        }
        let id = self.next_region.fetch_add(1, Ordering::Relaxed);
        self.regions[owner].lock().insert(
            id,
            Region {
                data,
                remaining: expected_gets,
                on_release,
            },
        );
        id
    }

    /// One-sided fetch of a region owned by `owner`.
    ///
    /// The calling rank obtains a zero-copy handle to the region bytes —
    /// emulating an RDMA read that does not involve the owner's CPU. The
    /// fetch that satisfies the region's expected count triggers release.
    pub fn rma_get(&self, caller: Rank, owner: Rank, id: RegionId) -> Arc<Vec<u8>> {
        let (data, release) = {
            let mut table = self.regions[owner].lock();
            let region = table.get_mut(&id).expect("rma_get on unknown region");
            let data = Arc::clone(&region.data);
            region.remaining -= 1;
            if region.remaining == 0 {
                let region = table.remove(&id).unwrap();
                (data, region.on_release)
            } else {
                (data, None)
            }
        };
        if caller != owner {
            self.stats.rma_gets.fetch_add(1, Ordering::Relaxed);
            self.stats
                .rma_bytes
                .fetch_add(data.len() as u64, Ordering::Relaxed);
        }
        if let Some(f) = release {
            f();
        }
        data
    }

    /// Number of live (unreleased) regions owned by `rank`.
    pub fn live_regions(&self, rank: Rank) -> usize {
        self.regions[rank].lock().len()
    }

    /// Block until all ranks reach the barrier (used by BSP comparators).
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Record that a serialization pass happened (for the copy-count
    /// ablation).
    pub fn count_serialization(&self) {
        self.stats.serializations.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a deep data copy performed by a backend.
    pub fn count_data_copy(&self) {
        self.stats.data_copies.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn am_roundtrip_between_ranks() {
        let fabric = Fabric::new(2);
        let rx1 = fabric.take_receiver(1);
        fabric.send_am(0, 1, 7, vec![1, 2, 3]);
        match rx1.recv().unwrap() {
            Packet::Am {
                handler,
                from,
                payload,
            } => {
                assert_eq!(handler, 7);
                assert_eq!(from, 0);
                assert_eq!(payload, vec![1, 2, 3]);
            }
            other => panic!("unexpected packet {:?}", other),
        }
        let s = fabric.stats().snapshot();
        assert_eq!(s.am_count, 1);
        assert_eq!(s.am_bytes, 3);
        fabric.packet_processed();
        assert_eq!(fabric.packets_in_flight(), 0);
    }

    #[test]
    fn local_am_not_counted_as_wire_traffic() {
        let fabric = Fabric::new(1);
        let rx = fabric.take_receiver(0);
        fabric.send_am(0, 0, 1, vec![0; 64]);
        let _ = rx.recv().unwrap();
        let s = fabric.stats().snapshot();
        assert_eq!(s.am_count, 0);
        assert_eq!(s.am_bytes, 0);
        assert_eq!(s.local_deliveries, 1);
    }

    #[test]
    fn rma_region_lifecycle() {
        let fabric = Fabric::new(3);
        let released = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&released);
        let data = Arc::new(vec![9u8; 128]);
        let id = fabric.register_region(
            0,
            data,
            2,
            Some(Box::new(move || flag.store(true, Ordering::SeqCst))),
        );
        assert_eq!(fabric.live_regions(0), 1);

        let d1 = fabric.rma_get(1, 0, id);
        assert_eq!(d1.len(), 128);
        assert!(!released.load(Ordering::SeqCst));
        assert_eq!(fabric.live_regions(0), 1);

        let d2 = fabric.rma_get(2, 0, id);
        assert_eq!(d2.len(), 128);
        assert!(released.load(Ordering::SeqCst));
        assert_eq!(fabric.live_regions(0), 0);

        let s = fabric.stats().snapshot();
        assert_eq!(s.rma_gets, 2);
        assert_eq!(s.rma_bytes, 256);
    }

    #[test]
    fn zero_consumer_region_releases_immediately() {
        let fabric = Fabric::new(1);
        let released = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&released);
        fabric.register_region(
            0,
            Arc::new(vec![1]),
            0,
            Some(Box::new(move || flag.store(true, Ordering::SeqCst))),
        );
        assert!(released.load(Ordering::SeqCst));
        assert_eq!(fabric.live_regions(0), 0);
    }

    #[test]
    fn barrier_synchronizes_ranks() {
        let fabric = Fabric::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let f = Arc::clone(&fabric);
            let c = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                c.fetch_add(1, Ordering::SeqCst);
                f.barrier();
                // After the barrier every rank must observe all increments.
                assert_eq!(c.load(Ordering::SeqCst), 4);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn shutdown_reaches_every_rank() {
        let fabric = Fabric::new(2);
        let rx0 = fabric.take_receiver(0);
        let rx1 = fabric.take_receiver(1);
        fabric.shutdown_all();
        assert!(matches!(rx0.recv().unwrap(), Packet::Shutdown));
        assert!(matches!(rx1.recv().unwrap(), Packet::Shutdown));
    }
}
