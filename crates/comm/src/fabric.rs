//! Simulated distributed communication fabric.
//!
//! The paper runs on MPI clusters; this module replaces the physical wire
//! with an in-process fabric of `n` logical **ranks**. Everything above the
//! wire is real: inter-rank messages are serialized into byte buffers and
//! travel through channels (the *eager* / active-message path), and large
//! payloads can be registered as memory **regions** and fetched one-sidedly
//! by the receiver (the *RMA* path used by the split-metadata protocol).
//!
//! RMA is emulated by letting the requesting rank read the registered region
//! directly, without involving the owner's CPU threads — exactly the property
//! real RDMA hardware provides. Once every expected consumer has fetched a
//! region it is released and its completion callback runs (the paper's
//! "sender is notified to release the source object").

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use ttg_telemetry::{Counter, MetricKey, Registry};

/// Logical process rank within the fabric.
pub type Rank = usize;

/// Identifier of a registered RMA region, unique per fabric.
pub type RegionId = u64;

/// A packet travelling between ranks.
#[derive(Debug)]
pub enum Packet {
    /// Active message: invoke `handler` on the destination with `payload`.
    Am {
        /// Destination-side handler index (e.g. template-task id).
        handler: u32,
        /// Sending rank.
        from: Rank,
        /// Serialized message body.
        payload: Vec<u8>,
    },
    /// Orderly shutdown of the destination's progress loop.
    Shutdown,
}

struct Region {
    data: Arc<Vec<u8>>,
    remaining: usize,
    on_release: Option<Box<dyn FnOnce() + Send>>,
}

/// Aggregate communication counters for a fabric (all ranks).
///
/// Since the telemetry migration these are handles into the fabric's
/// [`Registry`] (subsystem `"comm"`), so the same cells feed both this
/// legacy accessor and registry snapshots/JSON exports. Updates remain
/// single relaxed atomic ops, as with the previous ad-hoc `AtomicU64`s.
#[derive(Debug)]
pub struct FabricStats {
    /// Active messages sent between distinct ranks.
    am_count: Counter,
    /// Bytes moved through active messages.
    am_bytes: Counter,
    /// One-sided region fetches.
    rma_gets: Counter,
    /// Bytes moved through RMA fetches.
    rma_bytes: Counter,
    /// Messages delivered without leaving the rank.
    local_deliveries: Counter,
    /// Number of serialization passes performed (copies into wire buffers).
    serializations: Counter,
    /// Number of deep data copies performed by backends (clone-on-send).
    data_copies: Counter,
    /// Broadcast sends avoided by the optimized one-AM-per-rank broadcast.
    bcast_sends_saved: Counter,
    /// Bytes not re-serialized thanks to broadcast deduplication.
    bcast_bytes_saved: Counter,
    /// Per-rank bytes put on the wire (AM payloads + RMA reads served).
    tx_bytes: Vec<Counter>,
    /// Per-rank bytes taken off the wire.
    rx_bytes: Vec<Counter>,
}

/// Plain snapshot of [`FabricStats`] counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Active messages sent between distinct ranks.
    pub am_count: u64,
    /// Bytes moved through active messages.
    pub am_bytes: u64,
    /// One-sided region fetches.
    pub rma_gets: u64,
    /// Bytes moved through RMA fetches.
    pub rma_bytes: u64,
    /// Messages delivered without leaving the rank.
    pub local_deliveries: u64,
    /// Serialization passes.
    pub serializations: u64,
    /// Deep data copies by backends.
    pub data_copies: u64,
    /// Broadcast sends avoided by deduplication.
    pub bcast_sends_saved: u64,
    /// Bytes not re-serialized thanks to broadcast deduplication.
    pub bcast_bytes_saved: u64,
}

impl FabricStats {
    fn new(reg: &Registry, n: usize) -> Self {
        let c = |name| reg.counter(MetricKey::global("comm", name));
        FabricStats {
            am_count: c("am_count"),
            am_bytes: c("am_bytes"),
            rma_gets: c("rma_gets"),
            rma_bytes: c("rma_bytes"),
            local_deliveries: c("local_deliveries"),
            serializations: c("serializations"),
            data_copies: c("data_copies"),
            bcast_sends_saved: c("bcast_sends_saved"),
            bcast_bytes_saved: c("bcast_bytes_saved"),
            tx_bytes: (0..n)
                .map(|r| reg.counter(MetricKey::ranked(r, "comm", "tx_bytes")))
                .collect(),
            rx_bytes: (0..n)
                .map(|r| reg.counter(MetricKey::ranked(r, "comm", "rx_bytes")))
                .collect(),
        }
    }

    /// Capture the current counter values.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            am_count: self.am_count.get(),
            am_bytes: self.am_bytes.get(),
            rma_gets: self.rma_gets.get(),
            rma_bytes: self.rma_bytes.get(),
            local_deliveries: self.local_deliveries.get(),
            serializations: self.serializations.get(),
            data_copies: self.data_copies.get(),
            bcast_sends_saved: self.bcast_sends_saved.get(),
            bcast_bytes_saved: self.bcast_bytes_saved.get(),
        }
    }
}

impl StatsSnapshot {
    /// Total bytes that crossed rank boundaries (eager + RMA).
    pub fn total_bytes(&self) -> u64 {
        self.am_bytes + self.rma_bytes
    }
}

/// The in-process fabric connecting `n` ranks.
pub struct Fabric {
    n: usize,
    senders: Vec<Sender<Packet>>,
    receivers: Mutex<Vec<Option<Receiver<Packet>>>>,
    regions: Vec<Mutex<HashMap<RegionId, Region>>>,
    next_region: AtomicU64,
    barrier: Barrier,
    telemetry: Arc<Registry>,
    stats: FabricStats,
    in_flight: AtomicUsize,
}

impl Fabric {
    /// Create a fabric with `n` ranks.
    pub fn new(n: usize) -> Arc<Fabric> {
        assert!(n > 0, "fabric needs at least one rank");
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(Some(rx));
        }
        let telemetry = Arc::new(Registry::new());
        let stats = FabricStats::new(&telemetry, n);
        Arc::new(Fabric {
            n,
            senders,
            receivers: Mutex::new(receivers),
            regions: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            next_region: AtomicU64::new(1),
            barrier: Barrier::new(n),
            telemetry,
            stats,
            in_flight: AtomicUsize::new(0),
        })
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.n
    }

    /// Fabric-wide communication counters.
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// The metrics registry this fabric's counters live in. Snapshots taken
    /// here include everything [`FabricStats`] reports plus the per-rank
    /// `tx_bytes`/`rx_bytes` breakdown, keyed under subsystem `"comm"`.
    pub fn telemetry(&self) -> &Arc<Registry> {
        &self.telemetry
    }

    /// Take ownership of rank `rank`'s packet receiver. Panics if taken twice.
    pub fn take_receiver(&self, rank: Rank) -> Receiver<Packet> {
        self.receivers.lock()[rank]
            .take()
            .expect("receiver already taken for this rank")
    }

    /// Send an active message from `from` to `to`. Counts wire traffic only
    /// when the ranks differ; rank-local AMs are loopback deliveries.
    pub fn send_am(&self, from: Rank, to: Rank, handler: u32, payload: Vec<u8>) {
        if from != to {
            let bytes = payload.len() as u64;
            self.stats.am_count.inc();
            self.stats.am_bytes.add(bytes);
            // `from` may be an out-of-fabric sentinel (external seeding
            // uses usize::MAX); only real ranks have a tx counter.
            if let Some(tx) = self.stats.tx_bytes.get(from) {
                tx.add(bytes);
            }
            self.stats.rx_bytes[to].add(bytes);
            #[cfg(feature = "telemetry")]
            ttg_telemetry::instant(
                Some(to as u32),
                "comm",
                "am",
                &[("from", from as u64), ("bytes", bytes)],
            );
        } else {
            self.stats.local_deliveries.inc();
        }
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        self.senders[to]
            .send(Packet::Am {
                handler,
                from,
                payload,
            })
            .expect("fabric channel closed");
    }

    /// Mark a previously sent packet as fully processed (used by the
    /// termination detector to know when the fabric has drained).
    pub fn packet_processed(&self) {
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }

    /// Number of packets sent but not yet fully processed.
    pub fn packets_in_flight(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Deliver a shutdown packet to every rank.
    pub fn shutdown_all(&self) {
        for tx in &self.senders {
            let _ = tx.send(Packet::Shutdown);
        }
    }

    /// Register `data` as an RMA-readable region owned by `owner`.
    ///
    /// The region is released (and `on_release` runs) after `expected_gets`
    /// fetches. `expected_gets == 0` releases immediately.
    pub fn register_region(
        &self,
        owner: Rank,
        data: Arc<Vec<u8>>,
        expected_gets: usize,
        on_release: Option<Box<dyn FnOnce() + Send>>,
    ) -> RegionId {
        if expected_gets == 0 {
            if let Some(f) = on_release {
                f();
            }
            return 0;
        }
        let id = self.next_region.fetch_add(1, Ordering::Relaxed);
        self.regions[owner].lock().insert(
            id,
            Region {
                data,
                remaining: expected_gets,
                on_release,
            },
        );
        id
    }

    /// One-sided fetch of a region owned by `owner`.
    ///
    /// The calling rank obtains a zero-copy handle to the region bytes —
    /// emulating an RDMA read that does not involve the owner's CPU. The
    /// fetch that satisfies the region's expected count triggers release.
    pub fn rma_get(&self, caller: Rank, owner: Rank, id: RegionId) -> Arc<Vec<u8>> {
        let (data, release) = {
            let mut table = self.regions[owner].lock();
            let region = table.get_mut(&id).expect("rma_get on unknown region");
            let data = Arc::clone(&region.data);
            region.remaining -= 1;
            if region.remaining == 0 {
                let region = table.remove(&id).unwrap();
                (data, region.on_release)
            } else {
                (data, None)
            }
        };
        if caller != owner {
            let bytes = data.len() as u64;
            self.stats.rma_gets.inc();
            self.stats.rma_bytes.add(bytes);
            self.stats.tx_bytes[owner].add(bytes);
            self.stats.rx_bytes[caller].add(bytes);
            #[cfg(feature = "telemetry")]
            ttg_telemetry::instant(
                Some(caller as u32),
                "comm",
                "rma_get",
                &[("owner", owner as u64), ("bytes", bytes)],
            );
        }
        if let Some(f) = release {
            f();
        }
        data
    }

    /// Number of live (unreleased) regions owned by `rank`.
    pub fn live_regions(&self, rank: Rank) -> usize {
        self.regions[rank].lock().len()
    }

    /// Block until all ranks reach the barrier (used by BSP comparators).
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Record that a serialization pass happened (for the copy-count
    /// ablation).
    pub fn count_serialization(&self) {
        self.stats.serializations.inc();
    }

    /// Record a deep data copy performed by a backend.
    pub fn count_data_copy(&self) {
        self.stats.data_copies.inc();
    }

    /// Record what the optimized broadcast saved versus naive per-key
    /// sends: `sends_saved` skipped AMs and `bytes_saved` re-serialized
    /// payload bytes that never had to be produced.
    pub fn count_broadcast_dedup(&self, sends_saved: u64, bytes_saved: u64) {
        self.stats.bcast_sends_saved.add(sends_saved);
        self.stats.bcast_bytes_saved.add(bytes_saved);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn am_roundtrip_between_ranks() {
        let fabric = Fabric::new(2);
        let rx1 = fabric.take_receiver(1);
        fabric.send_am(0, 1, 7, vec![1, 2, 3]);
        match rx1.recv().unwrap() {
            Packet::Am {
                handler,
                from,
                payload,
            } => {
                assert_eq!(handler, 7);
                assert_eq!(from, 0);
                assert_eq!(payload, vec![1, 2, 3]);
            }
            other => panic!("unexpected packet {:?}", other),
        }
        let s = fabric.stats().snapshot();
        assert_eq!(s.am_count, 1);
        assert_eq!(s.am_bytes, 3);
        fabric.packet_processed();
        assert_eq!(fabric.packets_in_flight(), 0);
    }

    #[test]
    fn local_am_not_counted_as_wire_traffic() {
        let fabric = Fabric::new(1);
        let rx = fabric.take_receiver(0);
        fabric.send_am(0, 0, 1, vec![0; 64]);
        let _ = rx.recv().unwrap();
        let s = fabric.stats().snapshot();
        assert_eq!(s.am_count, 0);
        assert_eq!(s.am_bytes, 0);
        assert_eq!(s.local_deliveries, 1);
    }

    #[test]
    fn rma_region_lifecycle() {
        let fabric = Fabric::new(3);
        let released = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&released);
        let data = Arc::new(vec![9u8; 128]);
        let id = fabric.register_region(
            0,
            data,
            2,
            Some(Box::new(move || flag.store(true, Ordering::SeqCst))),
        );
        assert_eq!(fabric.live_regions(0), 1);

        let d1 = fabric.rma_get(1, 0, id);
        assert_eq!(d1.len(), 128);
        assert!(!released.load(Ordering::SeqCst));
        assert_eq!(fabric.live_regions(0), 1);

        let d2 = fabric.rma_get(2, 0, id);
        assert_eq!(d2.len(), 128);
        assert!(released.load(Ordering::SeqCst));
        assert_eq!(fabric.live_regions(0), 0);

        let s = fabric.stats().snapshot();
        assert_eq!(s.rma_gets, 2);
        assert_eq!(s.rma_bytes, 256);
    }

    #[test]
    fn zero_consumer_region_releases_immediately() {
        let fabric = Fabric::new(1);
        let released = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&released);
        fabric.register_region(
            0,
            Arc::new(vec![1]),
            0,
            Some(Box::new(move || flag.store(true, Ordering::SeqCst))),
        );
        assert!(released.load(Ordering::SeqCst));
        assert_eq!(fabric.live_regions(0), 0);
    }

    #[test]
    fn barrier_synchronizes_ranks() {
        let fabric = Fabric::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let f = Arc::clone(&fabric);
            let c = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                c.fetch_add(1, Ordering::SeqCst);
                f.barrier();
                // After the barrier every rank must observe all increments.
                assert_eq!(c.load(Ordering::SeqCst), 4);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn stats_and_registry_share_cells() {
        let fabric = Fabric::new(2);
        let _rx = fabric.take_receiver(1);
        fabric.send_am(0, 1, 3, vec![7u8; 40]);
        fabric.count_serialization();
        fabric.count_broadcast_dedup(5, 320);

        let legacy = fabric.stats().snapshot();
        let reg = fabric.telemetry().snapshot();
        assert_eq!(
            reg.counter(&MetricKey::global("comm", "am_count")),
            legacy.am_count
        );
        assert_eq!(reg.counter(&MetricKey::global("comm", "am_bytes")), 40);
        assert_eq!(
            reg.counter(&MetricKey::global("comm", "serializations")),
            legacy.serializations
        );
        assert_eq!(
            reg.counter(&MetricKey::global("comm", "bcast_sends_saved")),
            5
        );
        assert_eq!(legacy.bcast_bytes_saved, 320);
        assert_eq!(reg.counter(&MetricKey::ranked(0, "comm", "tx_bytes")), 40);
        assert_eq!(reg.counter(&MetricKey::ranked(1, "comm", "rx_bytes")), 40);
        assert_eq!(reg.counter(&MetricKey::ranked(1, "comm", "tx_bytes")), 0);
    }

    #[test]
    fn shutdown_reaches_every_rank() {
        let fabric = Fabric::new(2);
        let rx0 = fabric.take_receiver(0);
        let rx1 = fabric.take_receiver(1);
        fabric.shutdown_all();
        assert!(matches!(rx0.recv().unwrap(), Packet::Shutdown));
        assert!(matches!(rx1.recv().unwrap(), Packet::Shutdown));
    }
}
