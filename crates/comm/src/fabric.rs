//! Simulated distributed communication fabric.
//!
//! The paper runs on MPI clusters; this module replaces the physical wire
//! with an in-process fabric of `n` logical **ranks**. Everything above the
//! wire is real: inter-rank messages are serialized into byte buffers and
//! travel through channels (the *eager* / active-message path), and large
//! payloads can be registered as memory **regions** and fetched one-sidedly
//! by the receiver (the *RMA* path used by the split-metadata protocol).
//!
//! RMA is emulated by letting the requesting rank read the registered region
//! directly, without involving the owner's CPU threads — exactly the property
//! real RDMA hardware provides. Once every expected consumer has fetched a
//! region it is released and its completion callback runs (the paper's
//! "sender is notified to release the source object").
//!
//! ## Faults and reliable delivery
//!
//! By default the channels are a perfect network. Installing a
//! [`FaultPlan`] (see [`Fabric::with_faults`]) interposes a chaos layer on
//! every inter-rank AM — seeded drop/duplicate/delay/reorder decisions and
//! scripted rank deaths — together with a reliable-delivery protocol
//! (per-link sequence numbers, receive-side dedup windows, ack +
//! exponential-backoff retransmit with a bounded retry budget; see
//! [`crate::reliable`]). Logical delivery stays exactly-once; a packet that
//! exhausts its retry budget is converted into a structured [`CommError`]
//! instead of a panic or a silent hang. Errors from any comm path
//! accumulate in the fabric's error sink and surface in execution reports.

use std::collections::HashMap;
use std::sync::{Arc, Barrier, Weak};
use std::time::{Duration, Instant};
use ttg_model::sync::{AtomicBool, AtomicU64, AtomicUsize, Condvar, Mutex, Ordering};

use crossbeam_channel::{unbounded, Receiver, Sender};
use ttg_telemetry::{Counter, Gauge, MetricKey, Registry};
use ttg_transport::{
    local_mesh, Endpoint, Frame, Link, TransportError, TransportKind, TransportSpec,
};

use crate::buf::{ReadBuf, WireError, WriteBuf};
use crate::fault::{salt, FaultPlan};
use crate::recover::SnapshotSink;
use crate::reliable::{
    content_key, is_replay, pack_seq, unpack_seq, ContentLog, LinkTx, PendingAcks, SeqWindow,
    Unacked, REPLAY_BIT,
};

/// Logical process rank within the fabric.
pub type Rank = usize;

/// Identifier of a registered RMA region, unique per fabric.
pub type RegionId = u64;

/// Released regions kept around to answer duplicated or late one-sided
/// fetches idempotently instead of aborting the owner.
const RELEASED_CACHE: usize = 64;

/// Frame kinds some layer of the stack consumes, cross-referenced by the
/// `ttg-check` protocol analysis against the transport's
/// [`WIRE_KINDS`](ttg_transport::frame::WIRE_KINDS) table (TTG052: a kind
/// the wire defines but nobody terminates means sends silently vanish).
///
/// `Hello` and `Bye` terminate inside the transport (handshake and reader
/// teardown); `Ack` terminates in the reliable layer's accept path;
/// `AckRange` — the batched form — terminates in the mesh receive
/// dispatch (`mesh_rx`), which clears the acked retransmit entries; the
/// rest terminate in the fabric's receive dispatch (`remote_rx`).
pub const CONSUMED_FRAME_KINDS: &[&str] = &[
    "Hello",
    "Am",
    "Ack",
    "AckRange",
    "RmaReq",
    "RmaResp",
    "BarrierEnter",
    "BarrierRelease",
    "TermProbe",
    "TermReply",
    "TermDone",
    "Bye",
];

/// Retransmit/delay progress-thread tick.
const PROGRESS_TICK: Duration = Duration::from_micros(100);

/// A packet travelling between ranks.
#[derive(Debug)]
pub enum Packet {
    /// Active message: invoke `handler` on the destination with `payload`.
    Am {
        /// Destination-side handler index (e.g. template-task id).
        handler: u32,
        /// Sending rank.
        from: Rank,
        /// Per-link sequence number under reliable delivery (0 when the
        /// reliable layer is off or the message is rank-local).
        seq: u64,
        /// Serialized message body.
        payload: Vec<u8>,
    },
    /// Orderly shutdown of the destination's progress loop.
    Shutdown,
}

/// Why a send could not be handed to the fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendError {
    /// Sending rank (may be the external-seed sentinel).
    pub from: Rank,
    /// Destination rank whose channel is gone.
    pub to: Rank,
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fabric channel to rank {} closed (send from rank {})",
            self.to, self.from
        )
    }
}

impl std::error::Error for SendError {}

/// Why a one-sided fetch failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RmaError {
    /// The region id is not registered on the owner (already fully
    /// released and evicted from the idempotency cache, or never existed).
    UnknownRegion {
        /// Fetching rank.
        caller: Rank,
        /// Alleged owner.
        owner: Rank,
        /// The unknown region id.
        id: RegionId,
    },
    /// A cross-process fetch timed out waiting for the owner's response
    /// (multi-process executions only). Separate from `Transport` so a
    /// respawning peer surfaces as a bounded, structured stall instead of
    /// an undifferentiated transport failure.
    Timeout {
        /// Fetching rank.
        caller: Rank,
        /// Region owner that never answered.
        owner: Rank,
        /// The region id being fetched.
        id: RegionId,
        /// How long the caller waited.
        waited: Duration,
    },
    /// A cross-process fetch could not reach the owner or timed out
    /// waiting for the response (multi-process executions only).
    Transport {
        /// Fetching rank.
        caller: Rank,
        /// Region owner that could not be reached.
        owner: Rank,
        /// The region id being fetched.
        id: RegionId,
        /// Transport-level diagnosis.
        detail: String,
    },
}

impl std::fmt::Display for RmaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RmaError::UnknownRegion { caller, owner, id } => write!(
                f,
                "rma_get of unknown region {id} on rank {owner} (caller rank {caller})"
            ),
            RmaError::Timeout {
                caller,
                owner,
                id,
                waited,
            } => write!(
                f,
                "rma_get of region {id} on rank {owner} timed out after \
                 {waited:?} (caller rank {caller})"
            ),
            RmaError::Transport {
                caller,
                owner,
                id,
                detail,
            } => write!(
                f,
                "rma_get of region {id} on rank {owner} failed in transit \
                 (caller rank {caller}): {detail}"
            ),
        }
    }
}

impl std::error::Error for RmaError {}

/// Classification of a structured communication failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommErrorKind {
    /// A logical packet was abandoned after exhausting its retransmission
    /// budget (dead link / dead rank).
    RetryBudgetExhausted,
    /// A send hit a closed per-rank channel (destination shut down).
    ChannelClosed,
    /// An active message arrived but its delivery failed (decode error,
    /// missing region, handler fault).
    DeliveryFailed,
    /// A one-sided fetch named a region the owner does not hold.
    UnknownRegion,
    /// The execution did not reach quiescence within its delivery
    /// deadline.
    DeadlineMissed,
    /// The link layer failed: connect refused, peer reset, handshake
    /// mismatch, or framing garbage (socket transports only).
    TransportFailure,
    /// A killed rank was restored from its last snapshot and its logged
    /// messages replayed (informational: recorded in the recovery log,
    /// not the error sink).
    RankRecovered,
    /// A periodic state snapshot could not be captured or persisted; the
    /// previous snapshot remains the restore point.
    SnapshotFailed,
    /// A rank restore/replay attempt failed; the rank stays dead and the
    /// run degrades to the PR 5 fail-and-report path.
    RecoveryFailed,
    /// A cross-process RMA fetch expired its configured timeout.
    RmaTimeout,
}

impl CommErrorKind {
    /// Stable diagnostic code (rendered by `ttg-check`, DESIGN §8).
    pub fn code(&self) -> &'static str {
        match self {
            CommErrorKind::RetryBudgetExhausted => "TTG040",
            CommErrorKind::DeadlineMissed => "TTG041",
            CommErrorKind::ChannelClosed => "TTG042",
            CommErrorKind::DeliveryFailed => "TTG043",
            CommErrorKind::UnknownRegion => "TTG044",
            CommErrorKind::TransportFailure => "TTG045",
            CommErrorKind::RankRecovered => "TTG046",
            CommErrorKind::SnapshotFailed => "TTG047",
            CommErrorKind::RecoveryFailed => "TTG048",
            CommErrorKind::RmaTimeout => "TTG049",
        }
    }
}

/// A structured communication failure, recorded in the fabric's error sink
/// instead of panicking, and surfaced through execution reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommError {
    /// What went wrong.
    pub kind: CommErrorKind,
    /// Sending rank, when known.
    pub from: Option<Rank>,
    /// Destination rank, when known.
    pub to: Option<Rank>,
    /// Destination handler (template-task id), when known.
    pub handler: Option<u32>,
    /// Link sequence number, when known.
    pub seq: Option<u64>,
    /// Human-readable context.
    pub detail: String,
}

impl CommError {
    /// Stable diagnostic code of this error's kind.
    pub fn code(&self) -> &'static str {
        self.kind.code()
    }
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {:?}", self.code(), self.kind)?;
        if let (Some(from), Some(to)) = (self.from, self.to) {
            write!(f, " on link {from}->{to}")?;
        } else if let Some(to) = self.to {
            write!(f, " on rank {to}")?;
        }
        if let Some(seq) = self.seq {
            write!(f, " seq {seq}")?;
        }
        if !self.detail.is_empty() {
            write!(f, ": {}", self.detail)?;
        }
        Ok(())
    }
}

impl From<SendError> for CommError {
    fn from(e: SendError) -> Self {
        CommError {
            kind: CommErrorKind::ChannelClosed,
            from: Some(e.from),
            to: Some(e.to),
            handler: None,
            seq: None,
            detail: e.to_string(),
        }
    }
}

impl From<RmaError> for CommError {
    fn from(e: RmaError) -> Self {
        match e {
            RmaError::UnknownRegion { caller, owner, id } => CommError {
                kind: CommErrorKind::UnknownRegion,
                from: Some(owner),
                to: Some(caller),
                handler: None,
                seq: Some(id),
                detail: format!("region {id}"),
            },
            RmaError::Timeout {
                caller,
                owner,
                id,
                waited,
            } => CommError {
                kind: CommErrorKind::RmaTimeout,
                from: Some(owner),
                to: Some(caller),
                handler: None,
                seq: Some(id),
                detail: format!("expired after {waited:?}"),
            },
            RmaError::Transport {
                caller,
                owner,
                id,
                detail,
            } => CommError {
                kind: CommErrorKind::TransportFailure,
                from: Some(owner),
                to: Some(caller),
                handler: None,
                seq: Some(id),
                detail,
            },
        }
    }
}

struct Region {
    data: Arc<Vec<u8>>,
    remaining: usize,
    on_release: Option<Box<dyn FnOnce() + Send>>,
}

/// Aggregate communication counters for a fabric (all ranks).
///
/// Since the telemetry migration these are handles into the fabric's
/// [`Registry`] (subsystem `"comm"`), so the same cells feed both this
/// legacy accessor and registry snapshots/JSON exports. Updates remain
/// single relaxed atomic ops, as with the previous ad-hoc `AtomicU64`s.
#[derive(Debug)]
pub struct FabricStats {
    /// Active messages sent between distinct ranks (logical count: fault
    /// retransmits and injected duplicates are not re-counted here).
    am_count: Counter,
    /// Bytes moved through active messages.
    am_bytes: Counter,
    /// One-sided region fetches.
    rma_gets: Counter,
    /// Bytes moved through RMA fetches.
    rma_bytes: Counter,
    /// Messages delivered without leaving the rank.
    local_deliveries: Counter,
    /// Number of serialization passes performed (copies into wire buffers).
    serializations: Counter,
    /// Number of deep data copies performed by backends (clone-on-send).
    data_copies: Counter,
    /// Broadcast sends avoided by the optimized one-AM-per-rank broadcast.
    bcast_sends_saved: Counter,
    /// Bytes not re-serialized thanks to broadcast deduplication.
    bcast_bytes_saved: Counter,
    /// Physical retransmissions performed by the reliable layer.
    am_retries: Counter,
    /// Physical packets dropped by fault injection (incl. dead-rank drops).
    am_dropped_injected: Counter,
    /// Physical packets duplicated by fault injection.
    am_dup_injected: Counter,
    /// Physical packets held back (delay/reorder injection).
    am_delayed_injected: Counter,
    /// Duplicate receptions rejected by the receive-side dedup window.
    am_dedup_hits: Counter,
    /// Logical packets abandoned after the retry budget ran out.
    am_retry_exhausted: Counter,
    /// Acknowledgement flush events: one per batched-ack range set sent
    /// (or, under immediate acks, one per per-message ack), so
    /// acks-per-message = `ack_flushes / am_count`.
    ack_flushes: Counter,
    /// Sequence numbers acknowledged through batched range flushes.
    acks_batched: Counter,
    /// Of those, seqs whose flush piggybacked on reverse-direction data
    /// (the rest went out on the flush timer).
    acks_piggybacked: Counter,
    /// Sends that hit a closed channel (post-shutdown no-ops).
    post_shutdown_sends: Counter,
    /// Late/duplicate one-sided fetches answered from the released-region
    /// idempotency cache.
    rma_stale_gets: Counter,
    /// Entries evicted from the released-region LRU cache to make room.
    rma_released_evictions: Counter,
    /// Executions that missed their delivery deadline.
    delivery_deadline_misses: Counter,
    /// Per-rank bytes put on the wire (AM payloads + RMA reads served).
    tx_bytes: Vec<Counter>,
    /// Per-rank bytes taken off the wire.
    rx_bytes: Vec<Counter>,
    /// Link-layer bytes handed to the OS (subsystem `"transport"`; zero on
    /// the in-process wire, which has no framing overhead to measure).
    transport_tx_bytes: Counter,
    /// Link-layer bytes read off the wire.
    transport_rx_bytes: Counter,
    /// Successful connection establishments (dial or accept + handshake).
    transport_connects: Counter,
    /// Connections re-established after a mid-run failure.
    transport_reconnects: Counter,
    /// Handshakes refused (magic/version/rank mismatch).
    transport_handshake_failures: Counter,
    /// Writer-thread write syscalls (one per gathered batch).
    transport_tx_writes: Counter,
    /// Frames that rode a coalesced write instead of paying for their own.
    transport_tx_frames_coalesced: Counter,
    /// Frames a writer dropped after reconnect recovery failed.
    transport_tx_frames_abandoned: Counter,
    /// Per-peer send-queue high-water marks (frames).
    transport_queue_hwm: Vec<Gauge>,
    /// Per-rank scheduler ready-queue high-water marks (jobs on one
    /// worker's queues).
    sched_ready_hwm: Vec<Gauge>,
    /// Recovery: per-rank state snapshots captured.
    snapshots_taken: Counter,
    /// Recovery: bytes persisted through the snapshot sink.
    snapshot_bytes: Counter,
    /// Recovery: snapshots restored into a rank.
    restores: Counter,
    /// Recovery: killed ranks brought back to life.
    recoveries: Counter,
    /// Recovery: logged messages retransmitted during replay.
    replayed_sends: Counter,
    /// Recovery: replayed/re-executed messages dropped by content dedup.
    replay_dedup_hits: Counter,
}

/// Plain snapshot of [`FabricStats`] counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Active messages sent between distinct ranks (logical).
    pub am_count: u64,
    /// Bytes moved through active messages.
    pub am_bytes: u64,
    /// One-sided region fetches.
    pub rma_gets: u64,
    /// Bytes moved through RMA fetches.
    pub rma_bytes: u64,
    /// Messages delivered without leaving the rank.
    pub local_deliveries: u64,
    /// Serialization passes.
    pub serializations: u64,
    /// Deep data copies by backends.
    pub data_copies: u64,
    /// Broadcast sends avoided by deduplication.
    pub bcast_sends_saved: u64,
    /// Bytes not re-serialized thanks to broadcast deduplication.
    pub bcast_bytes_saved: u64,
    /// Physical retransmissions by the reliable layer.
    pub am_retries: u64,
    /// Packets dropped by fault injection.
    pub am_dropped_injected: u64,
    /// Packets duplicated by fault injection.
    pub am_dup_injected: u64,
    /// Packets held back by delay/reorder injection.
    pub am_delayed_injected: u64,
    /// Duplicates rejected by the dedup window.
    pub am_dedup_hits: u64,
    /// Logical packets abandoned (retry budget exhausted).
    pub am_retry_exhausted: u64,
    /// Ack flush events (batched range sets, or per-message immediate
    /// acks): acks-per-message = `ack_flushes / am_count`.
    pub ack_flushes: u64,
    /// Sequence numbers acknowledged via batched ranges.
    pub acks_batched: u64,
    /// Batched-acked seqs that piggybacked on reverse-direction data.
    pub acks_piggybacked: u64,
    /// Post-shutdown sends absorbed as counted no-ops.
    pub post_shutdown_sends: u64,
    /// Late/duplicate RMA fetches served idempotently.
    pub rma_stale_gets: u64,
    /// Released-region LRU cache evictions.
    pub rma_released_evictions: u64,
    /// Delivery-deadline misses.
    pub delivery_deadline_misses: u64,
    /// Link-layer bytes handed to the OS (socket transports).
    pub transport_tx_bytes: u64,
    /// Link-layer bytes read off the wire (socket transports).
    pub transport_rx_bytes: u64,
    /// Link-layer connection establishments.
    pub transport_connects: u64,
    /// Link-layer reconnections after mid-run failures.
    pub transport_reconnects: u64,
    /// Link-layer handshakes refused.
    pub transport_handshake_failures: u64,
    /// Writer-thread write syscalls. Frames-per-write =
    /// `(transport_tx_writes + transport_tx_frames_coalesced) /
    /// transport_tx_writes`.
    pub transport_tx_writes: u64,
    /// Frames that rode a coalesced write instead of their own syscall.
    pub transport_tx_frames_coalesced: u64,
    /// Frames abandoned by a writer after failed reconnect recovery.
    pub transport_tx_frames_abandoned: u64,
    /// Highest per-peer send-queue depth ever observed (frames; the
    /// lifetime mark, surviving transport reconnects — the per-connection
    /// `send_queue_hwm` gauge resets on every establishment).
    pub transport_queue_hwm: u64,
    /// Highest single-worker ready-queue depth observed across ranks
    /// (jobs; mirrors `transport_queue_hwm` for the scheduler).
    pub sched_ready_hwm: u64,
    /// Recovery: per-rank state snapshots captured.
    pub snapshots_taken: u64,
    /// Recovery: bytes persisted through the snapshot sink.
    pub snapshot_bytes: u64,
    /// Recovery: snapshots restored into a rank.
    pub restores: u64,
    /// Recovery: killed ranks brought back to life.
    pub recoveries: u64,
    /// Recovery: logged messages retransmitted during replay.
    pub replayed_sends: u64,
    /// Recovery: replayed/re-executed messages dropped by content dedup.
    pub replay_dedup_hits: u64,
}

impl FabricStats {
    fn new(reg: &Registry, n: usize) -> Self {
        let c = |name| reg.counter(MetricKey::global("comm", name));
        let t = |name| reg.counter(MetricKey::global("transport", name));
        FabricStats {
            am_count: c("am_count"),
            am_bytes: c("am_bytes"),
            rma_gets: c("rma_gets"),
            rma_bytes: c("rma_bytes"),
            local_deliveries: c("local_deliveries"),
            serializations: c("serializations"),
            data_copies: c("data_copies"),
            bcast_sends_saved: c("bcast_sends_saved"),
            bcast_bytes_saved: c("bcast_bytes_saved"),
            am_retries: c("am_retries"),
            am_dropped_injected: c("am_dropped_injected"),
            am_dup_injected: c("am_dup_injected"),
            am_delayed_injected: c("am_delayed_injected"),
            am_dedup_hits: c("am_dedup_hits"),
            am_retry_exhausted: c("am_retry_exhausted"),
            ack_flushes: c("ack_flushes"),
            acks_batched: c("acks_batched"),
            acks_piggybacked: c("acks_piggybacked"),
            post_shutdown_sends: c("post_shutdown_sends"),
            rma_stale_gets: c("rma_stale_gets"),
            rma_released_evictions: c("rma_released_evictions"),
            delivery_deadline_misses: c("delivery_deadline_misses"),
            tx_bytes: (0..n)
                .map(|r| reg.counter(MetricKey::ranked(r, "comm", "tx_bytes")))
                .collect(),
            rx_bytes: (0..n)
                .map(|r| reg.counter(MetricKey::ranked(r, "comm", "rx_bytes")))
                .collect(),
            // Same keys `ttg_transport::TransportMetrics::register` uses:
            // the registry dedups, so these handles share cells with the
            // transport's own counters.
            transport_tx_bytes: t("tx_bytes"),
            transport_rx_bytes: t("rx_bytes"),
            transport_connects: t("connects"),
            transport_reconnects: t("reconnects"),
            transport_handshake_failures: t("handshake_failures"),
            transport_tx_writes: t("tx_writes"),
            transport_tx_frames_coalesced: t("tx_frames_coalesced"),
            transport_tx_frames_abandoned: t("tx_frames_abandoned"),
            transport_queue_hwm: (0..n)
                .map(|r| reg.gauge(MetricKey::ranked(r, "transport", "send_queue_hwm_lifetime")))
                .collect(),
            // Same keys the per-rank worker pools register under: the
            // registry dedups, so these handles share the pools' cells.
            sched_ready_hwm: (0..n)
                .map(|r| reg.gauge(MetricKey::ranked(r, "sched", "ready_hwm")))
                .collect(),
            snapshots_taken: c("snapshots_taken"),
            snapshot_bytes: c("snapshot_bytes"),
            restores: c("restores"),
            recoveries: c("recoveries"),
            replayed_sends: c("replayed_sends"),
            replay_dedup_hits: c("replay_dedup_hits"),
        }
    }

    /// Capture the current counter values.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            am_count: self.am_count.get(),
            am_bytes: self.am_bytes.get(),
            rma_gets: self.rma_gets.get(),
            rma_bytes: self.rma_bytes.get(),
            local_deliveries: self.local_deliveries.get(),
            serializations: self.serializations.get(),
            data_copies: self.data_copies.get(),
            bcast_sends_saved: self.bcast_sends_saved.get(),
            bcast_bytes_saved: self.bcast_bytes_saved.get(),
            am_retries: self.am_retries.get(),
            am_dropped_injected: self.am_dropped_injected.get(),
            am_dup_injected: self.am_dup_injected.get(),
            am_delayed_injected: self.am_delayed_injected.get(),
            am_dedup_hits: self.am_dedup_hits.get(),
            am_retry_exhausted: self.am_retry_exhausted.get(),
            ack_flushes: self.ack_flushes.get(),
            acks_batched: self.acks_batched.get(),
            acks_piggybacked: self.acks_piggybacked.get(),
            post_shutdown_sends: self.post_shutdown_sends.get(),
            rma_stale_gets: self.rma_stale_gets.get(),
            rma_released_evictions: self.rma_released_evictions.get(),
            delivery_deadline_misses: self.delivery_deadline_misses.get(),
            transport_tx_bytes: self.transport_tx_bytes.get(),
            transport_rx_bytes: self.transport_rx_bytes.get(),
            transport_connects: self.transport_connects.get(),
            transport_reconnects: self.transport_reconnects.get(),
            transport_handshake_failures: self.transport_handshake_failures.get(),
            transport_tx_writes: self.transport_tx_writes.get(),
            transport_tx_frames_coalesced: self.transport_tx_frames_coalesced.get(),
            transport_tx_frames_abandoned: self.transport_tx_frames_abandoned.get(),
            transport_queue_hwm: self
                .transport_queue_hwm
                .iter()
                .map(|g| g.get().max(0) as u64)
                .max()
                .unwrap_or(0),
            sched_ready_hwm: self
                .sched_ready_hwm
                .iter()
                .map(|g| g.get().max(0) as u64)
                .max()
                .unwrap_or(0),
            snapshots_taken: self.snapshots_taken.get(),
            snapshot_bytes: self.snapshot_bytes.get(),
            restores: self.restores.get(),
            recoveries: self.recoveries.get(),
            replayed_sends: self.replayed_sends.get(),
            replay_dedup_hits: self.replay_dedup_hits.get(),
        }
    }
}

impl StatsSnapshot {
    /// Total bytes that crossed rank boundaries (eager + RMA).
    pub fn total_bytes(&self) -> u64 {
        self.am_bytes + self.rma_bytes
    }
}

/// A physical packet held back by delay/reorder injection.
struct Delayed {
    due: Instant,
    to: Rank,
    handler: u32,
    from: Rank,
    seq: u64,
    payload: Arc<Vec<u8>>,
}

/// State of the chaos + reliable-delivery layer (present only when a
/// [`FaultPlan`] is installed).
struct ChaosState {
    plan: FaultPlan,
    /// Sender-side link state, indexed `link_row(from) * n + to` where
    /// `link_row` maps out-of-fabric sentinel senders to row `n`.
    links: Vec<Mutex<LinkTx>>,
    /// Receive-side dedup windows: per destination rank, one window per
    /// incoming link row (`n + 1` rows).
    windows: Vec<Mutex<Vec<SeqWindow>>>,
    /// Receive-side batched-ack accumulators, indexed like `links` (entry
    /// `link_idx(from, to)` holds the acks rank `to` owes rank `from`).
    /// Unused (always empty) when `plan.immediate_acks` is set.
    pending_acks: Vec<Mutex<PendingAcks>>,
    /// Packets held by delay/reorder injection.
    delayq: Mutex<Vec<Delayed>>,
    /// Sequenced packets received per rank (drives kill scripts).
    rx_packets: Vec<AtomicU64>,
    /// Ranks killed by script: all their traffic is silently dropped.
    killed: Vec<AtomicBool>,
    /// Progress-thread stop flag (set on fabric shutdown).
    stop: AtomicBool,
    /// Recovery (`FaultPlan::recover`): snapshot interval in accepted
    /// packets, `None` = recovery off (the pre-PR-10 fail-and-report path).
    recover: Option<u64>,
    /// Per-kill-script "already fired" latches: a restored rank's replayed
    /// packet counter must not re-trigger the same scripted death.
    kill_fired: Vec<AtomicBool>,
    /// Per-sender-row incarnation, packed into the top bits of every wire
    /// seq. Bumped when the rank restores; the sentinel row `n` never
    /// restarts and stays at 0.
    incarnations: Vec<AtomicU64>,
    /// Per destination rank: last incarnation seen on each incoming link
    /// row. A higher incarnation resets that row's window and switches the
    /// row to content-log consultation.
    link_inc: Vec<Mutex<Vec<u64>>>,
    /// Per destination rank: content multiset of delivered messages, one
    /// log per incoming link row (consulted after a sender restart).
    content_logs: Vec<Mutex<Vec<ContentLog>>>,
    /// Per directed link (indexed like `links`): every logical message
    /// ever sent, parked for replay toward a restored receiver.
    replay_log: Vec<Mutex<Vec<ReplayEntry>>>,
    /// Per rank: fresh logical accepts since the rank's last snapshot
    /// (in-flight compensation at restore, see `restore_rank_comm`).
    accepted_since_snap: Vec<AtomicU64>,
    /// Per rank: logical sends originated since the rank's last snapshot.
    sent_since_snap: Vec<AtomicU64>,
    /// Per rank: received-packet count at the last snapshot (drives the
    /// `snapshot_due` interval check).
    last_snap: Vec<AtomicU64>,
}

/// One logical message parked in a link's replay log.
struct ReplayEntry {
    /// Raw (unpacked) link sequence number at send time.
    seq: u64,
    /// Sender-row incarnation the message was originally packed with.
    /// Replay re-packs with this value, not the current one: a restored
    /// sender's reset `LinkTx` reissues the same raw seqs under its new
    /// incarnation, so replaying old messages under the new incarnation
    /// would collide with re-executed sends in the receive window.
    inc: u64,
    handler: u32,
    payload: Arc<Vec<u8>>,
}

/// Which link layer carries inter-rank frames (DESIGN §9).
enum LinkLayer {
    /// In-process channels — the historical wire, zero behavior change.
    Channels,
    /// All ranks in this process, but inter-rank AMs cross real sockets
    /// (TCP loopback or UDS). Everything above the wire — chaos layer,
    /// acks, RMA, barrier, termination — stays shared-memory.
    Mesh {
        /// Element `r` is rank `r`'s endpoint.
        endpoints: Vec<Arc<dyn Endpoint>>,
        /// `links[from * n + to]`, `None` on the diagonal. Cached at
        /// construction: `Endpoint::link` builds a fresh `Arc` per call,
        /// which is an allocation the per-message send path can skip.
        links: Vec<Option<Arc<dyn Link>>>,
    },
    /// This process is **one rank** of a multi-process job. RMA, barrier,
    /// and termination detection all become message protocols.
    Remote(Box<RemoteState>),
}

/// One rank's (sent, received, quiescence) observation, exchanged by the
/// distributed termination protocol.
#[derive(Clone, PartialEq, Eq)]
struct TermObs {
    sent: u64,
    recvd: u64,
    epoch: u64,
    idle: bool,
}

/// Coordinator-side state of the counter-based termination detector:
/// rank 0 probes all ranks each round and declares termination after two
/// consecutive rounds with identical all-idle observations whose global
/// sent and received counts balance.
#[derive(Default)]
struct TermDriver {
    round: u64,
    probed: bool,
    replies: HashMap<Rank, TermObs>,
    prev: Option<Vec<TermObs>>,
}

/// Callback reporting whether this process is locally idle and its
/// activity epoch (installed by the executor; see
/// [`Fabric::install_idle_probe`]).
type IdleProbe = Box<dyn Fn() -> (bool, u64) + Send + Sync>;

/// State of a multi-process rank: its connected endpoint plus the
/// message-protocol replacements for the shared-memory RMA, barrier, and
/// termination paths.
struct RemoteState {
    endpoint: Arc<dyn Endpoint>,
    /// This process's rank.
    me: Rank,
    /// Inter-process AMs sent / received by this rank (termination input).
    sent: AtomicU64,
    recvd: AtomicU64,
    /// Set when the coordinator declares global termination.
    done: AtomicBool,
    idle_probe: Mutex<Option<IdleProbe>>,
    /// Outstanding cross-process RMA fetches by request id.
    next_req: AtomicU64,
    rma_waiters: Mutex<HashMap<u64, std::sync::mpsc::Sender<Option<Vec<u8>>>>>,
    /// Barrier epochs this rank has entered so far.
    barrier_seq: AtomicU64,
    /// Highest released barrier epoch (waiters block on `barrier_cv`).
    barrier_released: Mutex<u64>,
    barrier_cv: Condvar,
    /// Coordinator only: entry counts per in-progress epoch.
    barrier_entered: Mutex<HashMap<u64, usize>>,
    term: Mutex<TermDriver>,
    /// Scripted self-abort: kill this process after receiving this many
    /// AM frames (remote `kill=r@n` fault plans; the launcher's watchdog
    /// recovers the job).
    kill_after: Option<u64>,
    /// AM frames received so far (drives `kill_after`).
    rx_frames: AtomicU64,
}

impl RemoteState {
    fn new(endpoint: Arc<dyn Endpoint>, kill_after: Option<u64>) -> RemoteState {
        let me = endpoint.rank();
        RemoteState {
            endpoint,
            me,
            sent: AtomicU64::new(0),
            recvd: AtomicU64::new(0),
            done: AtomicBool::new(false),
            idle_probe: Mutex::new(None),
            next_req: AtomicU64::new(1),
            rma_waiters: Mutex::new(HashMap::new()),
            barrier_seq: AtomicU64::new(0),
            barrier_released: Mutex::new(0),
            barrier_cv: Condvar::new(),
            barrier_entered: Mutex::new(HashMap::new()),
            term: Mutex::new(TermDriver::default()),
            kill_after,
            rx_frames: AtomicU64::new(0),
        }
    }
}

/// How long a cross-process RMA fetch waits for the owner's response.
const RMA_REMOTE_TIMEOUT: Duration = Duration::from_secs(30);

/// Default interval between recovery snapshots, accepted packets.
pub const DEFAULT_SNAPSHOT_INTERVAL: u64 = 128;

/// The fabric connecting `n` ranks — in one process over channels or a
/// socket mesh, or one rank per process over [`TransportSpec::Remote`].
pub struct Fabric {
    n: usize,
    senders: Vec<Sender<Packet>>,
    receivers: Mutex<Vec<Option<Receiver<Packet>>>>,
    regions: Vec<Mutex<HashMap<RegionId, Region>>>,
    /// Recently released regions, kept to answer duplicate/late gets.
    released: Vec<Mutex<Vec<(RegionId, Arc<Vec<u8>>)>>>,
    next_region: AtomicU64,
    barrier: Barrier,
    telemetry: Arc<Registry>,
    stats: FabricStats,
    in_flight: AtomicUsize,
    /// Structured comm failures (drained into execution reports).
    errors: Mutex<Vec<CommError>>,
    chaos: Option<ChaosState>,
    wire: LinkLayer,
    /// Set by `shutdown_all`: late transport errors are teardown noise.
    stopping: AtomicBool,
    /// Where recovery snapshots persist (installed by the executor when
    /// the fault plan enables recovery).
    snapshot_sink: Mutex<Option<Arc<dyn SnapshotSink>>>,
    /// Informational recovery events (TTG046), kept apart from the error
    /// sink so a fully recovered run still reports zero comm errors.
    recovery_log: Mutex<Vec<CommError>>,
    /// Cross-process RMA fetch timeout, nanoseconds (satellite: was a
    /// hardcoded 30 s const; now configurable via `ExecConfig`).
    rma_timeout_ns: AtomicU64,
}

impl Fabric {
    /// Create a fabric with `n` ranks and a perfect network.
    pub fn new(n: usize) -> Arc<Fabric> {
        Self::with_faults(n, None)
    }

    /// Create a fabric with `n` ranks, optionally under a [`FaultPlan`].
    ///
    /// Installing a plan activates the reliable-delivery layer (sequence
    /// numbers, dedup windows, ack/retransmit) and spawns a progress
    /// thread that drives retransmission timers and delayed-packet
    /// release. The thread holds only a weak reference: it exits on
    /// [`shutdown_all`](Self::shutdown_all) or when the fabric is dropped.
    pub fn with_faults(n: usize, plan: Option<FaultPlan>) -> Arc<Fabric> {
        Self::with_transport(n, plan, &TransportSpec::InProc)
            .expect("in-process fabric construction is infallible")
    }

    /// Create a fabric with `n` ranks over the given link layer, optionally
    /// under a [`FaultPlan`].
    ///
    /// * [`TransportSpec::InProc`] — the historical channel wire.
    /// * [`TransportSpec::Tcp`] / [`TransportSpec::Uds`] — all ranks stay
    ///   in this process but inter-rank AMs cross real sockets. The chaos
    ///   and reliable-delivery layers sit unchanged above the sockets.
    /// * [`TransportSpec::Remote`] — this process is one rank of a
    ///   multi-process job; RMA, barrier, and termination detection run as
    ///   message protocols over the endpoint. Fault plans are not
    ///   supported here (the ack/dedup state is shared-memory).
    pub fn with_transport(
        n: usize,
        plan: Option<FaultPlan>,
        spec: &TransportSpec,
    ) -> Result<Arc<Fabric>, CommError> {
        assert!(n > 0, "fabric needs at least one rank");
        let transport_err = |detail: String| CommError {
            kind: CommErrorKind::TransportFailure,
            from: None,
            to: None,
            handler: None,
            seq: None,
            detail,
        };
        let telemetry = match spec {
            // The fabric adopts the remote endpoint's registry so
            // `FabricStats` and the transport share counter cells.
            TransportSpec::Remote(h) => Arc::clone(&h.registry),
            _ => Arc::new(Registry::new()),
        };
        let wire = match spec {
            TransportSpec::InProc => LinkLayer::Channels,
            TransportSpec::Tcp | TransportSpec::Uds => {
                let kind = if matches!(spec, TransportSpec::Tcp) {
                    TransportKind::Tcp
                } else {
                    TransportKind::Uds
                };
                let endpoints: Vec<Arc<dyn Endpoint>> = local_mesh(kind, n, &telemetry)
                    .map_err(|e| transport_err(e.to_string()))?
                    .into_iter()
                    .map(|ep| ep as Arc<dyn Endpoint>)
                    .collect();
                // Cache one link per ordered pair. Under the legacy wire
                // mode (`TTG_WIRE_COALESCE_BUDGET=0`, the bench_wire
                // baseline) the cache stays empty and every message
                // allocates a fresh link, as the pre-overhaul fabric did —
                // the A/B must reproduce that cost, not just the writer's.
                let legacy = std::env::var("TTG_WIRE_COALESCE_BUDGET").as_deref() == Ok("0");
                let mut links = Vec::with_capacity(n * n);
                for f in 0..n {
                    for t in 0..n {
                        links.push((!legacy && f != t).then(|| endpoints[f].link(t)));
                    }
                }
                LinkLayer::Mesh { endpoints, links }
            }
            TransportSpec::Remote(h) => {
                // Kill scripts are meaningful on real processes: the rank
                // whose threshold fires aborts itself and the launcher's
                // watchdog recovers the job. Probabilistic link faults
                // stay rejected — multi-process ranks share no ack/dedup
                // state, so per-packet dice have nothing to act on.
                let mut kill_after: Option<u64> = None;
                if let Some(plan) = &plan {
                    if !plan.is_kill_only() {
                        return Err(transport_err(
                            "probabilistic fault injection (drop/dup/reorder/delay) \
                             requires an in-process transport (inproc/tcp/uds); \
                             multi-process ranks share no ack/dedup state — \
                             remote mode accepts kill=r@n scripts only"
                                .into(),
                        ));
                    }
                    if plan.kills.iter().any(|k| k.rank == 0) {
                        return Err(transport_err(
                            "kill=0 is not recoverable in remote mode: rank 0 \
                             coordinates the barrier and termination protocols"
                                .into(),
                        ));
                    }
                    kill_after = plan
                        .kills
                        .iter()
                        .filter(|k| k.rank == h.endpoint.rank())
                        .map(|k| k.after_packets)
                        .min();
                }
                if h.endpoint.n_ranks() != n {
                    return Err(transport_err(format!(
                        "endpoint is rank {}/{} but the fabric wants {n} ranks",
                        h.endpoint.rank(),
                        h.endpoint.n_ranks()
                    )));
                }
                LinkLayer::Remote(Box::new(RemoteState::new(
                    Arc::clone(&h.endpoint),
                    kill_after,
                )))
            }
        };
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(Some(rx));
        }
        let stats = FabricStats::new(&telemetry, n);
        let chaos = plan.map(|plan| ChaosState {
            recover: plan.recover,
            kill_fired: plan.kills.iter().map(|_| AtomicBool::new(false)).collect(),
            plan,
            links: (0..(n + 1) * n)
                .map(|_| Mutex::new(LinkTx::default()))
                .collect(),
            windows: (0..n)
                .map(|_| Mutex::new(vec![SeqWindow::new(); n + 1]))
                .collect(),
            pending_acks: (0..(n + 1) * n)
                .map(|_| Mutex::new(PendingAcks::default()))
                .collect(),
            delayq: Mutex::new(Vec::new()),
            rx_packets: (0..n).map(|_| AtomicU64::new(0)).collect(),
            killed: (0..n).map(|_| AtomicBool::new(false)).collect(),
            stop: AtomicBool::new(false),
            incarnations: (0..n + 1).map(|_| AtomicU64::new(0)).collect(),
            link_inc: (0..n).map(|_| Mutex::new(vec![0u64; n + 1])).collect(),
            content_logs: (0..n)
                .map(|_| Mutex::new((0..n + 1).map(|_| ContentLog::new()).collect()))
                .collect(),
            replay_log: (0..(n + 1) * n).map(|_| Mutex::new(Vec::new())).collect(),
            accepted_since_snap: (0..n).map(|_| AtomicU64::new(0)).collect(),
            sent_since_snap: (0..n).map(|_| AtomicU64::new(0)).collect(),
            last_snap: (0..n).map(|_| AtomicU64::new(0)).collect(),
        });
        let fabric = Arc::new(Fabric {
            n,
            senders,
            receivers: Mutex::new(receivers),
            regions: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            released: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
            next_region: AtomicU64::new(1),
            barrier: Barrier::new(n),
            telemetry,
            stats,
            in_flight: AtomicUsize::new(0),
            errors: Mutex::new(Vec::new()),
            chaos,
            wire,
            stopping: AtomicBool::new(false),
            snapshot_sink: Mutex::new(None),
            recovery_log: Mutex::new(Vec::new()),
            rma_timeout_ns: AtomicU64::new(RMA_REMOTE_TIMEOUT.as_nanos() as u64),
        });
        // Install receive sinks now that the fabric exists. Sinks hold only
        // a weak reference: endpoint reader threads never keep the fabric
        // alive past its last strong handle.
        match &fabric.wire {
            LinkLayer::Channels => {}
            LinkLayer::Mesh { endpoints, .. } => {
                for (r, ep) in endpoints.iter().enumerate() {
                    let weak = Arc::downgrade(&fabric);
                    ep.start(Arc::new(move |src, res| {
                        if let Some(f) = weak.upgrade() {
                            f.mesh_rx(r, src, res);
                        }
                    }));
                }
            }
            LinkLayer::Remote(rs) => {
                let weak = Arc::downgrade(&fabric);
                rs.endpoint.start(Arc::new(move |src, res| {
                    if let Some(f) = weak.upgrade() {
                        f.remote_rx(src, res);
                    }
                }));
            }
        }
        if fabric.chaos.is_some() {
            let weak = Arc::downgrade(&fabric);
            std::thread::Builder::new()
                .name("fabric-reliable".into())
                .spawn(move || progress_loop(weak))
                .expect("failed to spawn fabric progress thread");
        }
        Ok(fabric)
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.n
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.chaos.as_ref().map(|c| &c.plan)
    }

    /// Fabric-wide communication counters.
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// The metrics registry this fabric's counters live in. Snapshots taken
    /// here include everything [`FabricStats`] reports plus the per-rank
    /// `tx_bytes`/`rx_bytes` breakdown, keyed under subsystem `"comm"`.
    pub fn telemetry(&self) -> &Arc<Registry> {
        &self.telemetry
    }

    /// Record a structured communication failure.
    pub fn record_error(&self, e: CommError) {
        self.errors.lock().push(e);
    }

    /// Drain the accumulated communication failures.
    pub fn take_errors(&self) -> Vec<CommError> {
        std::mem::take(&mut *self.errors.lock())
    }

    /// Record a delivery-deadline miss (called by executors when a
    /// bounded wait gives up).
    pub fn count_deadline_miss(&self) {
        self.stats.delivery_deadline_misses.inc();
    }

    /// Take ownership of rank `rank`'s packet receiver. Panics if taken twice.
    pub fn take_receiver(&self, rank: Rank) -> Receiver<Packet> {
        self.receivers.lock()[rank]
            .take()
            .expect("receiver already taken for this rank")
    }

    /// Map a sending rank to its link-table row; out-of-fabric sentinel
    /// senders (external seeding uses `usize::MAX`) share row `n`.
    #[inline]
    fn link_row(&self, from: Rank) -> usize {
        if from < self.n {
            from
        } else {
            self.n
        }
    }

    #[inline]
    fn link_idx(&self, from: Rank, to: Rank) -> usize {
        self.link_row(from) * self.n + to
    }

    fn count_wire_am(&self, from: Rank, to: Rank, bytes: u64) {
        self.stats.am_count.inc();
        self.stats.am_bytes.add(bytes);
        // `from` may be an out-of-fabric sentinel (external seeding
        // uses usize::MAX); only real ranks have a tx counter.
        if let Some(tx) = self.stats.tx_bytes.get(from) {
            tx.add(bytes);
        }
        self.stats.rx_bytes[to].add(bytes);
        #[cfg(feature = "telemetry")]
        ttg_telemetry::instant(
            Some(to as u32),
            "comm",
            "am",
            &[("from", from as u64), ("bytes", bytes)],
        );
    }

    /// Send an active message from `from` to `to`. Counts wire traffic only
    /// when the ranks differ; rank-local AMs are loopback deliveries.
    ///
    /// Under a [`FaultPlan`] the message enters the reliable layer: it is
    /// sequenced, held for retransmission until acknowledged, and its
    /// physical copies are subject to injected faults. Loopback messages
    /// bypass the chaos layer (process-internal delivery cannot fail).
    ///
    /// A send to a rank whose channel is closed (post-shutdown teardown)
    /// is a counted no-op reported as [`SendError`] — never a panic.
    pub fn send_am(
        &self,
        from: Rank,
        to: Rank,
        handler: u32,
        payload: Vec<u8>,
    ) -> Result<(), SendError> {
        let bytes = payload.len() as u64;
        if let LinkLayer::Remote(rs) = &self.wire {
            if to != rs.me {
                // SPMD gating: in a multi-process job every process runs
                // the same graph code, so a send whose destination lives in
                // another process is either (a) ours to put on the wire
                // (`from == me`), or (b) another process's responsibility
                // — including external seeds (sentinel `from >= n`), which
                // each process delivers for its own rank only.
                if from != rs.me {
                    return Ok(());
                }
                self.stats.am_count.inc();
                self.stats.am_bytes.add(bytes);
                self.stats.tx_bytes[from].add(bytes);
                rs.sent.fetch_add(1, Ordering::SeqCst);
                // No local in-flight bump: the receiving process accounts
                // for the packet when its sink enqueues it.
                return match rs.endpoint.link(to).send(Frame::Am {
                    from: from as u32,
                    handler,
                    seq: 0,
                    payload,
                }) {
                    Ok(()) => Ok(()),
                    Err(e) => {
                        rs.sent.fetch_sub(1, Ordering::SeqCst);
                        self.transport_send_failed(from, to, Some(handler), e);
                        Err(SendError { from, to })
                    }
                };
            }
            // Destination is this process: fall through to the local
            // channel (loopback and external-seed deliveries).
        }
        let chaos_carries = match &self.chaos {
            // Under recovery even rank-local sends are sequenced and
            // logged: a restored rank's re-executed tasks re-send their
            // loopback outputs, and only the seq/content machinery can
            // dedup those against the copies delivered before the crash.
            // Remote mode never engages this layer: its fault plans are
            // kill scripts acting on the process itself.
            Some(cs) => {
                !matches!(self.wire, LinkLayer::Remote(_)) && (from != to || cs.recover.is_some())
            }
            None => false,
        };
        if chaos_carries {
            if let Some(cs) = &self.chaos {
                if from != to {
                    self.count_wire_am(from, to, bytes);
                } else {
                    self.stats.local_deliveries.inc();
                }
                self.in_flight.fetch_add(1, Ordering::SeqCst);
                if cs.recover.is_some() {
                    if let Some(c) = cs.sent_since_snap.get(from) {
                        c.fetch_add(1, Ordering::SeqCst);
                    }
                }
                let payload = Arc::new(payload);
                let seq = {
                    let mut link = cs.links[self.link_idx(from, to)].lock();
                    let seq = link.assign_seq();
                    link.unacked.insert(
                        seq,
                        Unacked {
                            handler,
                            payload: Arc::clone(&payload),
                            attempts: 0,
                            next_retry: Instant::now() + cs.plan.retry.backoff(1),
                            delivered: false,
                            replayed: false,
                        },
                    );
                    seq
                };
                if cs.recover.is_some() {
                    cs.replay_log[self.link_idx(from, to)].lock().push(ReplayEntry {
                        seq,
                        inc: cs.incarnations[self.link_row(from)].load(Ordering::SeqCst),
                        handler,
                        payload: Arc::clone(&payload),
                    });
                }
                // Piggyback: flush any acks `from` owes `to` first, so on
                // a socket mesh the AckRange frame lands in the same
                // coalesced write as this data frame. Sentinel senders
                // (`from >= n`) receive nothing and never owe acks.
                if from < self.n && from != to {
                    self.flush_acks(cs, self.link_idx(to, from), true);
                }
                self.transmit(cs, from, to, handler, seq, &payload, 0, false);
                return Ok(());
            }
        }
        // Count the packet in flight *before* it is enqueued: once the
        // channel has it, the receiver may process and retire it at any
        // moment, and a late increment would let the in-flight gauge dip
        // through zero — briefly convincing the termination detector the
        // fabric is drained while a delivery is still being handled.
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        match self.phys_deliver(from, to, handler, 0, payload) {
            Ok(()) => {
                if from != to {
                    self.count_wire_am(from, to, bytes);
                } else {
                    self.stats.local_deliveries.inc();
                }
                Ok(())
            }
            Err(e) => {
                self.in_flight.fetch_sub(1, Ordering::SeqCst);
                Err(e)
            }
        }
    }

    /// Record a TTG045 for a failed outbound transport send. `Closed`
    /// during teardown is expected traffic loss, counted like a channel
    /// closed post-shutdown instead.
    fn transport_send_failed(&self, from: Rank, to: Rank, handler: Option<u32>, e: TransportError) {
        if matches!(e, TransportError::Closed { .. }) || self.stopping.load(Ordering::SeqCst) {
            self.stats.post_shutdown_sends.inc();
            return;
        }
        self.record_error(CommError {
            kind: CommErrorKind::TransportFailure,
            from: Some(from),
            to: Some(to),
            handler,
            seq: None,
            detail: e.to_string(),
        });
    }

    /// Hand one physical packet to the wire. Loopback (`from == to`),
    /// external-seed sentinels (`from >= n`), and everything on the
    /// channel link layer go through the per-rank channel; real inter-rank
    /// packets on a socket mesh cross the endpoint link instead and
    /// re-enter through `mesh_rx` on the destination side.
    fn phys_deliver(
        &self,
        from: Rank,
        to: Rank,
        handler: u32,
        seq: u64,
        payload: Vec<u8>,
    ) -> Result<(), SendError> {
        if let LinkLayer::Mesh { endpoints, links } = &self.wire {
            if from != to && from < self.n {
                let frame = Frame::Am {
                    from: from as u32,
                    handler,
                    seq,
                    payload,
                };
                // Cached link on the fast path; an empty cache entry means
                // legacy mode, which allocates one per message.
                let sent = match links[from * self.n + to].as_ref() {
                    Some(link) => link.send(frame),
                    None => endpoints[from].link(to).send(frame),
                };
                return match sent {
                    Ok(()) => Ok(()),
                    Err(e) => {
                        self.transport_send_failed(from, to, Some(handler), e);
                        Err(SendError { from, to })
                    }
                };
            }
        }
        match self.senders[to].send(Packet::Am {
            handler,
            from,
            seq,
            payload,
        }) {
            Ok(()) => Ok(()),
            Err(_) => {
                self.stats.post_shutdown_sends.inc();
                Err(SendError { from, to })
            }
        }
    }

    /// Socket-mesh receive sink for rank `to`: re-enter arriving AM frames
    /// into the rank's packet channel; surface connection-level errors as
    /// structured TTG045s (unless the fabric is tearing down).
    ///
    /// The full set of frame kinds the stack consumes somewhere is recorded
    /// in [`CONSUMED_FRAME_KINDS`]; keep it in sync with this dispatch.
    fn mesh_rx(&self, to: Rank, src: Rank, res: Result<Frame, TransportError>) {
        match res {
            Ok(Frame::Am {
                from,
                handler,
                seq,
                payload,
            }) => {
                if self.senders[to]
                    .send(Packet::Am {
                        handler,
                        from: from as usize,
                        seq,
                        payload,
                    })
                    .is_err()
                {
                    self.stats.post_shutdown_sends.inc();
                }
            }
            Ok(Frame::AckRange { ranges, .. }) => {
                // A peer's batched acknowledgement: `to` is the original
                // data sender, `src` the acker. Retire the covered
                // sequences from the sender-side retransmit map.
                if let Some(cs) = &self.chaos {
                    self.apply_ack_ranges(cs, self.link_idx(to, src), &ranges);
                }
            }
            Ok(_) => {} // control frames are transport-internal
            Err(e) => {
                if !self.stopping.load(Ordering::SeqCst) {
                    self.record_error(CommError {
                        kind: CommErrorKind::TransportFailure,
                        from: Some(src),
                        to: Some(to),
                        handler: None,
                        seq: None,
                        detail: e.to_string(),
                    });
                }
            }
        }
    }

    /// Multi-process receive sink: dispatch frames from peer processes.
    /// Runs on the endpoint's reader threads.
    fn remote_rx(&self, src: Rank, res: Result<Frame, TransportError>) {
        let LinkLayer::Remote(rs) = &self.wire else {
            return;
        };
        let frame = match res {
            Ok(frame) => frame,
            Err(e) => {
                if !self.stopping.load(Ordering::SeqCst) && !rs.done.load(Ordering::SeqCst) {
                    self.record_error(CommError {
                        kind: CommErrorKind::TransportFailure,
                        from: Some(src),
                        to: Some(rs.me),
                        handler: None,
                        seq: None,
                        detail: e.to_string(),
                    });
                }
                return;
            }
        };
        match frame {
            Frame::Am {
                from,
                handler,
                seq,
                payload,
            } => {
                let got = rs.rx_frames.fetch_add(1, Ordering::SeqCst) + 1;
                if let Some(after) = rs.kill_after {
                    if got >= after {
                        // Scripted death of a real OS process: the
                        // launcher's watchdog reaps this child and
                        // recovers the job (DESIGN §13).
                        eprintln!(
                            "rank {}: scripted kill after {got} received frames",
                            rs.me
                        );
                        std::process::abort();
                    }
                }
                self.stats.rx_bytes[rs.me].add(payload.len() as u64);
                rs.recvd.fetch_add(1, Ordering::SeqCst);
                self.in_flight.fetch_add(1, Ordering::SeqCst);
                if self.senders[rs.me]
                    .send(Packet::Am {
                        handler,
                        from: from as usize,
                        seq,
                        payload,
                    })
                    .is_err()
                {
                    self.in_flight.fetch_sub(1, Ordering::SeqCst);
                    self.stats.post_shutdown_sends.inc();
                }
            }
            Frame::RmaReq { from, req, region } => {
                // Serve the one-sided fetch from this process's region
                // table. RMA traffic is counted on the owning process;
                // the caller counts only its own rx bytes.
                let data = self
                    .rma_get_local(from as usize, rs.me, region)
                    .ok()
                    .map(|d| (*d).clone());
                let reply = Frame::RmaResp {
                    from: rs.me as u32,
                    req,
                    data,
                };
                if let Err(e) = rs.endpoint.link(from as usize).send(reply) {
                    self.transport_send_failed(rs.me, from as usize, None, e);
                }
            }
            Frame::RmaResp { req, data, .. } => {
                if let Some(tx) = rs.rma_waiters.lock().remove(&req) {
                    let _ = tx.send(data);
                }
            }
            Frame::BarrierEnter { epoch, .. } => {
                if rs.me == 0 {
                    self.barrier_arrive(rs, epoch);
                }
            }
            Frame::BarrierRelease { epoch } => {
                let mut released = rs.barrier_released.lock();
                if epoch > *released {
                    *released = epoch;
                }
                rs.barrier_cv.notify_all();
            }
            Frame::TermProbe { round } => {
                let o = self.observe_local(rs);
                let reply = Frame::TermReply {
                    from: rs.me as u32,
                    round,
                    sent: o.sent,
                    recvd: o.recvd,
                    epoch: o.epoch,
                    idle: o.idle,
                };
                if let Err(e) = rs.endpoint.link(0).send(reply) {
                    self.transport_send_failed(rs.me, 0, None, e);
                }
            }
            Frame::TermReply {
                from,
                round,
                sent,
                recvd,
                epoch,
                idle,
            } => {
                let mut term = rs.term.lock();
                if round == term.round {
                    term.replies.insert(
                        from as usize,
                        TermObs {
                            sent,
                            recvd,
                            epoch,
                            idle,
                        },
                    );
                }
            }
            Frame::TermDone => {
                rs.done.store(true, Ordering::SeqCst);
            }
            // Handshake and teardown frames are transport-internal; ack
            // frames (single and ranged) only exist under the
            // (in-process) reliable layer.
            Frame::Hello { .. }
            | Frame::Ack { .. }
            | Frame::AckRange { .. }
            | Frame::Bye { .. } => {}
        }
    }

    /// This rank's termination observation: locally idle (executor probe
    /// AND no packets in flight) plus the send/receive totals.
    fn observe_local(&self, rs: &RemoteState) -> TermObs {
        let (idle, epoch) = match &*rs.idle_probe.lock() {
            Some(p) => p(),
            None => (false, 0),
        };
        TermObs {
            sent: rs.sent.load(Ordering::SeqCst),
            recvd: rs.recvd.load(Ordering::SeqCst),
            epoch,
            idle: idle && self.in_flight.load(Ordering::SeqCst) == 0,
        }
    }

    /// Multi-process only: install the executor's idleness probe, input to
    /// the distributed termination detector. The probe must not capture
    /// the fabric (it would leak the reference cycle); capturing the
    /// quiescence tracker is enough.
    pub fn install_idle_probe(&self, probe: Box<dyn Fn() -> (bool, u64) + Send + Sync>) {
        if let LinkLayer::Remote(rs) = &self.wire {
            *rs.idle_probe.lock() = Some(probe);
        }
    }

    /// Multi-process only: has the coordinator declared global
    /// termination? Always `true` on in-process fabrics, where local
    /// quiescence is global quiescence.
    pub fn remote_done(&self) -> bool {
        match &self.wire {
            LinkLayer::Remote(rs) => rs.done.load(Ordering::SeqCst),
            _ => true,
        }
    }

    /// `Some(rank)` when this fabric is one rank of a multi-process job;
    /// `None` when all ranks live in this process.
    pub fn local_rank(&self) -> Option<Rank> {
        match &self.wire {
            LinkLayer::Remote(rs) => Some(rs.me),
            _ => None,
        }
    }

    /// Short name of the link layer this fabric runs on.
    pub fn transport_name(&self) -> &'static str {
        match &self.wire {
            LinkLayer::Channels => "inproc",
            LinkLayer::Mesh { endpoints, .. } => endpoints[0].kind().name(),
            LinkLayer::Remote(rs) => match rs.endpoint.kind() {
                TransportKind::Tcp => "remote-tcp",
                TransportKind::Uds => "remote-uds",
                TransportKind::InProc => "remote-inproc",
            },
        }
    }

    /// One step of the distributed termination detector, driven by rank
    /// 0's wait loop (no-op elsewhere). Each round probes every rank for
    /// `(sent, recvd, epoch, idle)`; two consecutive rounds of identical
    /// all-idle observations with globally balanced send/receive counts
    /// prove no message is in flight anywhere, and `TermDone` is
    /// broadcast.
    pub fn drive_termination(&self) {
        let LinkLayer::Remote(rs) = &self.wire else {
            return;
        };
        if rs.me != 0 || rs.done.load(Ordering::SeqCst) {
            return;
        }
        let mut term = rs.term.lock();
        if !term.probed {
            term.probed = true;
            let round = term.round;
            drop(term);
            for r in 1..self.n {
                if let Err(e) = rs.endpoint.link(r).send(Frame::TermProbe { round }) {
                    self.transport_send_failed(0, r, None, e);
                }
            }
            return;
        }
        // Refresh our own observation every poll so the coordinator's
        // idleness is current when the last remote reply lands.
        let own = self.observe_local(rs);
        term.replies.insert(0, own);
        if term.replies.len() < self.n {
            return;
        }
        let cur: Vec<TermObs> = (0..self.n).map(|r| term.replies[&r].clone()).collect();
        let all_idle = cur.iter().all(|o| o.idle);
        let sent: u64 = cur.iter().map(|o| o.sent).sum();
        let recvd: u64 = cur.iter().map(|o| o.recvd).sum();
        let stable = term.prev.as_deref() == Some(&cur[..]);
        if all_idle && sent == recvd && stable {
            drop(term);
            rs.done.store(true, Ordering::SeqCst);
            for r in 1..self.n {
                if let Err(e) = rs.endpoint.link(r).send(Frame::TermDone) {
                    self.transport_send_failed(0, r, None, e);
                }
            }
        } else {
            term.prev = Some(cur);
            term.replies.clear();
            term.round += 1;
            term.probed = false;
        }
    }

    /// Coordinator-side barrier entry for `epoch`; releases everyone once
    /// all `n` ranks have entered.
    fn barrier_arrive(&self, rs: &RemoteState, epoch: u64) {
        let complete = {
            let mut entered = rs.barrier_entered.lock();
            let c = entered.entry(epoch).or_insert(0);
            *c += 1;
            if *c == self.n {
                entered.remove(&epoch);
                true
            } else {
                false
            }
        };
        if complete {
            for r in 1..self.n {
                if let Err(e) = rs.endpoint.link(r).send(Frame::BarrierRelease { epoch }) {
                    self.transport_send_failed(0, r, None, e);
                }
            }
            let mut released = rs.barrier_released.lock();
            if epoch > *released {
                *released = epoch;
            }
            rs.barrier_cv.notify_all();
        }
    }

    /// One physical transmission attempt of a sequenced packet, subject to
    /// the fault plan. `attempt` is 0 for the original send and the retry
    /// ordinal for retransmissions (distinct fault rolls per attempt).
    fn transmit(
        &self,
        cs: &ChaosState,
        from: Rank,
        to: Rank,
        handler: u32,
        seq: u64,
        payload: &Arc<Vec<u8>>,
        attempt: u32,
        replay: bool,
    ) {
        // Wire seq carries the sender row's incarnation in its top bits so
        // receivers can tell a restarted sender's fresh seq space from
        // stale pre-crash traffic. Incarnation 0 (no restarts) packs to
        // the raw seq itself: recovery-off wires are bit-identical.
        // Entries that came back with a restored `LinkTx` transmit under
        // the *new* incarnation (the receiver's row was reset by the
        // restore surgery) with the replay marker set.
        let mut seq = pack_seq(
            cs.incarnations[self.link_row(from)].load(Ordering::SeqCst),
            seq,
        );
        if replay {
            seq |= REPLAY_BIT;
        }
        self.transmit_packed(cs, from, to, handler, seq, payload, attempt);
    }

    /// [`Fabric::transmit`] with an already-packed wire seq. Replay uses
    /// this directly: a replayed message must carry the incarnation its
    /// original transmission carried, not the sender row's current one —
    /// otherwise replayed old raw seqs collide with the restored rank's
    /// re-executed sends (whose reset `LinkTx` reissues the same raw seqs
    /// under the new incarnation) and the receive window drops whichever
    /// arrives second even when task scheduling reordered the content.
    fn transmit_packed(
        &self,
        cs: &ChaosState,
        from: Rank,
        to: Rank,
        handler: u32,
        seq: u64,
        payload: &Arc<Vec<u8>>,
        attempt: u32,
    ) {
        let link = self.link_idx(from, to) as u64;
        if is_replay(seq) {
            // Replayed copies are a recovery re-drive, not wire traffic:
            // they bypass the killed gate (restore re-drives the rank
            // while it is still latched dead) and fault injection (a
            // replayed loopback copy has no backing retransmit entry — an
            // injected drop would lose it forever). Each copy carries its
            // own in-flight slot from enqueue to classification —
            // otherwise the termination detector could see a drained
            // fabric while replays still sit unclassified in a channel.
            self.in_flight.fetch_add(1, Ordering::SeqCst);
            if self
                .phys_deliver(from, to, handler, seq, (**payload).clone())
                .is_err()
            {
                self.in_flight.fetch_sub(1, Ordering::SeqCst);
            }
            return;
        }
        // A killed rank neither sends nor receives.
        if cs.killed[to].load(Ordering::SeqCst)
            || (from < self.n && cs.killed[from].load(Ordering::SeqCst))
        {
            self.stats.am_dropped_injected.inc();
            return;
        }
        let plan = &cs.plan;
        if plan.drop > 0.0 && plan.roll(salt::DROP, link, seq, attempt) < plan.drop {
            self.stats.am_dropped_injected.inc();
            return;
        }
        let copies = if plan.dup > 0.0 && plan.roll(salt::DUP, link, seq, attempt) < plan.dup {
            self.stats.am_dup_injected.inc();
            2
        } else {
            1
        };
        for copy in 0..copies {
            // Per-copy hold decision: a long delay or a short hold that
            // lets later packets overtake (reordering).
            let copy_salt = copy as u64 * 16;
            let hold = if plan.delay > 0.0
                && plan.roll(salt::DELAY + copy_salt, link, seq, attempt) < plan.delay
            {
                Some(plan.delay_for(link, seq, attempt))
            } else if plan.reorder > 0.0
                && plan.roll(salt::REORDER + copy_salt, link, seq, attempt) < plan.reorder
            {
                // Short hold: a fraction of the long-delay floor.
                Some(plan.delay_for(link, seq, attempt) / 4)
            } else {
                None
            };
            match hold {
                Some(d) => {
                    self.stats.am_delayed_injected.inc();
                    cs.delayq.lock().push(Delayed {
                        due: Instant::now() + d,
                        to,
                        handler,
                        from,
                        seq,
                        payload: Arc::clone(payload),
                    });
                }
                None => {
                    // Channel/link closure is already counted and recorded
                    // inside `phys_deliver`; the reliable layer will
                    // retransmit or abandon with its own reporting.
                    let _ = self.phys_deliver(from, to, handler, seq, (**payload).clone());
                }
            }
        }
    }

    /// Receive-side classification of a sequenced packet: `true` means the
    /// packet is a fresh logical delivery and must be processed; `false`
    /// means it is a duplicate (or addressed to a dead rank) and must be
    /// discarded without counting as a logical receive.
    ///
    /// Fresh deliveries acknowledge the sender (subject to simulated ack
    /// loss, which only causes spurious retransmits — never double
    /// delivery).
    pub fn rx_accept(&self, to: Rank, from: Rank, seq: u64) -> bool {
        self.rx_accept_am(to, from, seq, 0, &[])
    }

    /// Like [`Fabric::rx_accept`], but with the packet's handler and
    /// payload so recovery-enabled fabrics can log delivered content and
    /// consult the log after a sender restart. Call sites that never run
    /// under recovery may keep using the payload-less wrapper.
    pub fn rx_accept_am(
        &self,
        to: Rank,
        from: Rank,
        seq: u64,
        handler: u32,
        payload: &[u8],
    ) -> bool {
        let Some(cs) = &self.chaos else { return true };
        if seq == 0 || (from == to && cs.recover.is_none()) {
            return true;
        }
        let replay = is_replay(seq);
        let (inc, raw) = unpack_seq(seq);
        let received = cs.rx_packets[to].fetch_add(1, Ordering::SeqCst) + 1;
        for (ki, k) in cs.plan.kills.iter().enumerate() {
            if k.rank == to && received >= k.after_packets && !cs.kill_fired[ki].load(Ordering::SeqCst)
            {
                // Latch: a restored rank's replayed packet counter must
                // not re-trigger the same scripted death.
                cs.kill_fired[ki].store(true, Ordering::SeqCst);
                cs.killed[to].store(true, Ordering::SeqCst);
            }
        }
        if cs.killed[to].load(Ordering::SeqCst) && !replay {
            // A killed rank receives nothing — except replayed copies,
            // which the restore sweep drives while the rank is still
            // latched dead. That ordering (replay enqueued before the
            // latch clears) plus channel FIFO guarantees every replayed
            // loopback copy is classified before any re-executed send's
            // fresh incarnation can retire the old seq space.
            return false;
        }
        let row = self.link_row(from);
        let mut consult = false;
        // Under recovery, the incarnation guard is held across the whole
        // classification — window, content log, and the delivered mark on
        // the sender entry. The restore's per-receiver surgery takes the
        // same lock, so each in-flight copy is classified either entirely
        // before the surgery (its delivered flag is visible to the retire
        // scan) or entirely after (the incarnation bump stale-drops it);
        // no copy can be half-classified across the cut and double-retire
        // an in-flight slot.
        let _inc_guard = if cs.recover.is_some() {
            let mut incs = cs.link_inc[to].lock();
            match inc.cmp(&incs[row]) {
                std::cmp::Ordering::Greater => {
                    // The sender restarted: its new seq space starts over,
                    // so the old window is meaningless. Reset it and rely
                    // on the content log to drop replayed duplicates.
                    incs[row] = inc;
                    cs.windows[to].lock()[row] = SeqWindow::new();
                }
                std::cmp::Ordering::Less => {
                    // Stale copy from a previous incarnation of the
                    // sender: its seq space is retired, drop unacked.
                    self.stats.am_dedup_hits.inc();
                    if replay {
                        // A replayed copy settles its own channel slot on
                        // every terminal outcome.
                        self.in_flight.fetch_sub(1, Ordering::SeqCst);
                    }
                    return false;
                }
                std::cmp::Ordering::Equal => {}
            }
            consult = incs[row] > 0;
            Some(incs)
        } else {
            None
        };
        let fresh = cs.windows[to].lock()[row].accept(raw);
        if !fresh {
            self.stats.am_dedup_hits.inc();
            if replay {
                // Duplicate replayed copy (e.g. a marked entry's
                // retransmit racing the sweep's logged copy): settle the
                // channel slot this transmission carried.
                self.in_flight.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let mut deliver = fresh;
        if fresh && cs.recover.is_some() && !payload.is_empty() {
            let key = Self::am_content_key(handler, payload);
            let mut logs = cs.content_logs[to].lock();
            if consult && logs[row].consume(key) {
                self.stats.replay_dedup_hits.inc();
                // Retire one slot either way: a live re-execution
                // duplicate holds its logical send's slot (it will never
                // reach `packet_processed`); a replayed copy holds the
                // per-transmission channel slot it was enqueued with.
                self.in_flight.fetch_sub(1, Ordering::SeqCst);
                deliver = false;
            } else {
                logs[row].record(key);
            }
        }
        if deliver && cs.recover.is_some() {
            cs.accepted_since_snap[to].fetch_add(1, Ordering::SeqCst);
            // A delivered replayed copy keeps its per-transmission slot:
            // the executor's `packet_processed` retires it — the original
            // logical send is no longer on the ledger (retired when first
            // processed, or by a restore scan).
        }
        let seq = raw;
        // Acknowledge on every receipt (duplicates re-ack, covering a
        // previously lost ack). The receiver's acceptance itself is always
        // recorded on the sender entry via `delivered`; only the ack
        // traffic is lossy.
        let link = self.link_idx(from, to);
        if cs.plan.immediate_acks {
            // Legacy one-ack-per-message mode: the ack "packet" is rolled
            // and applied right here. Each receipt is one flush event so
            // acks-per-message reads ~1.0 on this path.
            let mut tx = cs.links[link].lock();
            if let Some(e) = tx.unacked.get_mut(&seq) {
                if deliver && !replay && e.replayed {
                    // The entry's slot was retired by a restore scan, but
                    // this copy is the original transmit landing after the
                    // latch cleared — pre-pay its `packet_processed` like
                    // a replay-marked delivery. (The `delivered` mark and
                    // the scan share this lock, so exactly one of them
                    // settles the slot.)
                    self.in_flight.fetch_add(1, Ordering::SeqCst);
                }
                e.delivered = true;
                let ack_lost = cs.plan.drop > 0.0
                    && cs.plan.roll(salt::ACK, link as u64, seq, e.attempts) < cs.plan.drop;
                if !ack_lost {
                    tx.unacked.remove(&seq);
                }
            }
            self.stats.ack_flushes.inc();
        } else {
            // Batched mode: record acceptance on the sender entry, then
            // park the sequence in the per-link range accumulator. The
            // actual ack travels later — piggybacked on the next data
            // frame to the sender or pushed out by the flush timer.
            {
                let mut tx = cs.links[link].lock();
                if let Some(e) = tx.unacked.get_mut(&seq) {
                    if deliver && !replay && e.replayed {
                        // See the immediate-acks branch: original transmit
                        // of a scan-retired entry — pre-pay its slot.
                        self.in_flight.fetch_add(1, Ordering::SeqCst);
                    }
                    e.delivered = true;
                }
            }
            cs.pending_acks[link].lock().note(seq, Instant::now());
        }
        deliver
    }

    /// Content identity of a node active message. The node-AM header is
    /// `[from_task u64][msg_type u8][terminal u16][src_rank u64]`. Two
    /// fields are transient provenance, not logical content, and must be
    /// masked out of the identity: `from_task` (bytes 0..8 — a re-executed
    /// producer is allocated a fresh task id, but its message is the same
    /// message), and for split-metadata messages the `[region u64]
    /// [owner u64]` pair at bytes 19..35 (RMA ids change when a restarted
    /// task re-registers its output).
    fn am_content_key(handler: u32, payload: &[u8]) -> u128 {
        if payload.len() >= 35 && payload[8] == 1 {
            content_key(handler, &[&payload[8..19], &payload[35..]])
        } else if payload.len() >= 8 {
            content_key(handler, &[&payload[8..]])
        } else {
            content_key(handler, &[payload])
        }
    }

    /// Flush one link's accumulated acknowledgements: drain the range
    /// accumulator and retire the covered sequences from the sender's
    /// retransmit map — via an [`Frame::AckRange`] control frame on socket
    /// meshes (so the ack shares the coalesced wire write with data), or
    /// by direct shared-memory removal on the channel layer and for
    /// out-of-fabric sentinel senders, which have no inbound link.
    ///
    /// Under injected loss a whole flush can be dropped (one ack roll per
    /// flush, not per message). Recovery needs no extra machinery: the
    /// sender retransmits, the receiver's dedup hit re-notes the
    /// sequences, and a later flush covers them.
    fn flush_acks(&self, cs: &ChaosState, li: usize, piggyback: bool) {
        let (ranges, ordinal) = {
            let mut pa = cs.pending_acks[li].lock();
            if pa.is_empty() {
                return;
            }
            pa.take()
        };
        self.stats.ack_flushes.inc();
        if piggyback {
            self.stats.acks_piggybacked.inc();
        }
        let plan = &cs.plan;
        if plan.drop > 0.0
            && plan.roll(salt::ACK, li as u64, ranges[0].0, ordinal as u32) < plan.drop
        {
            return; // whole flush lost; retransmits re-note the seqs
        }
        self.stats
            .acks_batched
            .add(ranges.iter().map(|&(a, b)| b - a + 1).sum());
        let sender_row = li / self.n;
        let acker = li % self.n;
        if sender_row < self.n && acker != sender_row {
            if let LinkLayer::Mesh { endpoints, links } = &self.wire {
                let frame = Frame::AckRange {
                    from: acker as u32,
                    ranges: ranges.clone(),
                };
                let sent = match links[acker * self.n + sender_row].as_ref() {
                    Some(link) => link.send(frame),
                    None => endpoints[acker].link(sender_row).send(frame),
                };
                if sent.is_ok() {
                    return; // applied on arrival in `mesh_rx`
                }
                // Wire teardown must not strand retransmit state: fall
                // through to direct removal.
            }
        }
        self.apply_ack_ranges(cs, li, &ranges);
    }

    /// Retire every sequence covered by `ranges` from link `li`'s
    /// retransmit map (shared-memory ack application).
    fn apply_ack_ranges(&self, cs: &ChaosState, li: usize, ranges: &[(u64, u64)]) {
        let mut tx = cs.links[li].lock();
        for &(first, last) in ranges {
            for seq in first..=last {
                tx.unacked.remove(&seq);
            }
        }
    }

    /// One pass of the reliability progress engine: release due delayed
    /// packets, retransmit overdue unacked packets, abandon packets whose
    /// retry budget is spent. Called periodically by the progress thread;
    /// exposed for deterministic single-threaded tests.
    pub fn progress(&self) {
        let Some(cs) = &self.chaos else { return };
        let now = Instant::now();
        // Release held packets whose due time has passed.
        let due: Vec<Delayed> = {
            let mut q = cs.delayq.lock();
            let mut due = Vec::new();
            let mut i = 0;
            while i < q.len() {
                if q[i].due <= now {
                    due.push(q.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            due
        };
        for d in due {
            if cs.killed[d.to].load(Ordering::SeqCst) {
                self.stats.am_dropped_injected.inc();
                continue;
            }
            let _ = self.phys_deliver(d.from, d.to, d.handler, d.seq, (*d.payload).clone());
        }
        // Flush ack accumulators whose oldest entry has aged past the
        // flush deadline — before the retransmit scan, so a due ack beats
        // a spurious retransmission of the packets it covers.
        if !cs.plan.immediate_acks {
            for li in 0..cs.pending_acks.len() {
                if cs.pending_acks[li].lock().due(now, cs.plan.ack_flush) {
                    self.flush_acks(cs, li, false);
                }
            }
        }
        // Retransmit / abandon overdue unacked packets.
        for (li, l) in cs.links.iter().enumerate() {
            let from_row = li / self.n;
            let from: Rank = if from_row == self.n {
                usize::MAX
            } else {
                from_row
            };
            let to: Rank = li % self.n;
            // Recovery freeze: packets toward a killed-but-recoverable
            // rank park in `unacked` instead of burning retries — the
            // restore path replays them, so exhausting the budget here
            // would both poison the restored window and fabricate TTG040s.
            // Rows *from* the killed rank freeze too: their transmits are
            // dropped anyway, the restore discards the entries, and the
            // restored rank's re-executed tasks re-send the content.
            if cs.recover.is_some()
                && (cs.killed[to].load(Ordering::SeqCst)
                    || (from_row < self.n && cs.killed[from_row].load(Ordering::SeqCst)))
            {
                continue;
            }
            let mut retransmit: Vec<(u64, u32, Arc<Vec<u8>>, u32, bool)> = Vec::new();
            let mut exhausted: Vec<(u64, u32, bool, bool)> = Vec::new();
            {
                let mut link = l.lock();
                if link.unacked.is_empty() {
                    continue;
                }
                let mut give_up: Vec<u64> = Vec::new();
                for (&seq, e) in link.unacked.iter_mut() {
                    if now < e.next_retry {
                        continue;
                    }
                    if e.attempts >= cs.plan.retry.max_retries {
                        give_up.push(seq);
                        continue;
                    }
                    e.attempts += 1;
                    e.next_retry = now + cs.plan.retry.backoff(e.attempts + 1);
                    retransmit.push((seq, e.handler, Arc::clone(&e.payload), e.attempts, e.replayed));
                }
                for seq in give_up {
                    let e = link.unacked.remove(&seq).unwrap();
                    exhausted.push((seq, e.handler, e.delivered, e.replayed));
                }
            }
            for (seq, handler, payload, attempt, replayed) in retransmit {
                self.stats.am_retries.inc();
                self.transmit(cs, from, to, handler, seq, &payload, attempt, replayed);
            }
            for (seq, handler, delivered, replayed) in exhausted {
                // Claim the sequence number in the receiver's window: if
                // the claim succeeds the packet was never (and will never
                // be) logically delivered — report the loss and retire the
                // in-flight slot. If it fails, the receiver accepted a
                // copy at some point (the ack was lost); nothing was lost.
                let row = self.link_row(from);
                let claimed = !delivered && cs.windows[to].lock()[row].accept(seq);
                if claimed {
                    if !replayed {
                        // A restored entry's slot was already retired by
                        // the restore scan; only live sends still hold one.
                        self.in_flight.fetch_sub(1, Ordering::SeqCst);
                    }
                    self.stats.am_retry_exhausted.inc();
                    self.record_error(CommError {
                        kind: CommErrorKind::RetryBudgetExhausted,
                        from: (from != usize::MAX).then_some(from),
                        to: Some(to),
                        handler: Some(handler),
                        seq: Some(seq),
                        detail: format!(
                            "abandoned after {} retransmissions",
                            cs.plan.retry.max_retries
                        ),
                    });
                }
            }
        }
    }

    /// Mark a previously sent packet as fully processed (used by the
    /// termination detector to know when the fabric has drained).
    pub fn packet_processed(&self) {
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }

    /// Number of packets sent but not yet fully processed.
    pub fn packets_in_flight(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// The configured cross-process RMA fetch timeout.
    pub fn rma_timeout(&self) -> Duration {
        Duration::from_nanos(self.rma_timeout_ns.load(Ordering::SeqCst))
    }

    /// Override the cross-process RMA fetch timeout (`ExecConfig::rma_timeout`).
    pub fn set_rma_timeout(&self, t: Duration) {
        self.rma_timeout_ns
            .store(t.as_nanos().min(u64::MAX as u128) as u64, Ordering::SeqCst);
    }

    /// Install the sink recovery snapshots persist through.
    pub fn install_snapshot_sink(&self, sink: Arc<dyn SnapshotSink>) {
        *self.snapshot_sink.lock() = Some(sink);
    }

    /// Whether the installed fault plan enables checkpoint/restore.
    pub fn recovery_enabled(&self) -> bool {
        self.chaos
            .as_ref()
            .is_some_and(|cs| cs.recover.is_some())
    }

    /// Snapshot cadence of the installed fault plan, in accepted packets
    /// (`None` = recovery off).
    pub fn snapshot_interval(&self) -> Option<u64> {
        self.chaos.as_ref().and_then(|cs| cs.recover)
    }

    /// Whether rank-local logical sends must flow through the wire path
    /// instead of short-circuiting into the matching table.
    ///
    /// Message-logging recovery is only sound if *every* logical message a
    /// rank depends on is either captured in a snapshot or replayable from
    /// a sender's log. A rank restored from an empty snapshot rebuilds its
    /// state purely from replayed sends, so local seeds and loopback task
    /// outputs must be sequenced on the diagonal link like any other
    /// traffic. Remote mode recovers by job-level restart and keeps the
    /// fast local path.
    pub fn wire_local_sends(&self) -> bool {
        self.recovery_enabled() && self.local_rank().is_none()
    }

    /// Whether rank `r` has accepted enough packets since its last
    /// snapshot for a new one to be due.
    pub fn snapshot_due(&self, r: Rank) -> bool {
        let Some(cs) = &self.chaos else { return false };
        let Some(every) = cs.recover else { return false };
        !cs.killed[r].load(Ordering::SeqCst)
            && cs.rx_packets[r].load(Ordering::SeqCst)
                >= cs.last_snap[r].load(Ordering::SeqCst) + every
    }

    /// Ranks killed by script that recovery should bring back.
    pub fn ranks_needing_recovery(&self) -> Vec<Rank> {
        let Some(cs) = &self.chaos else { return Vec::new() };
        if cs.recover.is_none() {
            return Vec::new();
        }
        (0..self.n)
            .filter(|&r| cs.killed[r].load(Ordering::SeqCst))
            .collect()
    }

    /// Export rank `r`'s comm-layer recovery state: incoming dedup
    /// windows, packet counter, content logs, and outgoing link state
    /// (seq counters + in-flight payloads). Called on `r`'s comm thread
    /// between deliveries, with `r`'s worker pool idle — that pair of
    /// conditions is the consistent cut (DESIGN §13).
    pub fn export_rank_comm(&self, r: Rank, b: &mut WriteBuf) {
        let Some(cs) = &self.chaos else { return };
        {
            let windows = cs.windows[r].lock();
            b.put_u64(windows.len() as u64);
            for w in windows.iter() {
                w.export(b);
            }
        }
        b.put_u64(cs.rx_packets[r].load(Ordering::SeqCst));
        {
            let logs = cs.content_logs[r].lock();
            b.put_u64(logs.len() as u64);
            for log in logs.iter() {
                log.export(b);
            }
        }
        b.put_u64(self.n as u64);
        for t in 0..self.n {
            cs.links[self.link_idx(r, t)].lock().export(b);
        }
    }

    /// Persist a completed snapshot blob for rank `r` through the sink
    /// and advance the rank's snapshot bookkeeping.
    pub fn commit_snapshot(&self, r: Rank, blob: &[u8]) -> Result<(), String> {
        let sink = self.snapshot_sink.lock().clone();
        let Some(sink) = sink else {
            return Err("no snapshot sink installed".into());
        };
        if let Err(e) = sink.store(r, blob) {
            self.record_error(CommError {
                kind: CommErrorKind::SnapshotFailed,
                from: None,
                to: Some(r),
                handler: None,
                seq: None,
                detail: e.to_string(),
            });
            return Err(e.to_string());
        }
        if let Some(cs) = &self.chaos {
            cs.last_snap[r].store(cs.rx_packets[r].load(Ordering::SeqCst), Ordering::SeqCst);
            cs.accepted_since_snap[r].store(0, Ordering::SeqCst);
            cs.sent_since_snap[r].store(0, Ordering::SeqCst);
        }
        self.stats.snapshots_taken.inc();
        self.stats.snapshot_bytes.add(blob.len() as u64);
        Ok(())
    }

    /// Load rank `r`'s last stored snapshot blob, if any.
    pub fn load_snapshot(&self, r: Rank) -> Option<Vec<u8>> {
        let sink = self.snapshot_sink.lock().clone()?;
        sink.load(r).ok().flatten()
    }

    /// Restore rank `r`'s comm-layer state from a snapshot section
    /// (`None` = restore to empty: valid, because the sender-side replay
    /// logs cover the run from its first message), bump the rank's send
    /// incarnation, clear its killed flag, and replay every logged
    /// message toward it. The caller must have restored the rank's
    /// matching tables first and verified its worker pool is idle.
    pub fn restore_rank_comm(&self, r: Rank, section: Option<&[u8]>) -> Result<(), WireError> {
        let Some(cs) = &self.chaos else {
            return Err(WireError::new("restore without a fault plan"));
        };
        let now = Instant::now();
        // Decode the snapshot (or synthesize empty state).
        let mut windows: Vec<SeqWindow> = vec![SeqWindow::new(); self.n + 1];
        let mut rx_packets = 0u64;
        let mut logs: Vec<ContentLog> = (0..self.n + 1).map(|_| ContentLog::new()).collect();
        let mut out_links: Vec<LinkTx> = (0..self.n).map(|_| LinkTx::default()).collect();
        if let Some(bytes) = section {
            let mut rd = ReadBuf::new(bytes);
            let nw = rd.get_u64()? as usize;
            windows = (0..nw)
                .map(|_| SeqWindow::import(&mut rd))
                .collect::<Result<_, _>>()?;
            rx_packets = rd.get_u64()?;
            let nl = rd.get_u64()? as usize;
            logs = (0..nl)
                .map(|_| ContentLog::import(&mut rd))
                .collect::<Result<_, _>>()?;
            let no = rd.get_u64()? as usize;
            out_links = (0..no)
                .map(|_| LinkTx::import(&mut rd, now))
                .collect::<Result<_, _>>()?;
        }
        // New incarnation for the restored rank's outgoing rows. Every
        // receiver's row for `r` is reset and moved to content-consult
        // mode *here*, atomically with the in-flight retirement scan:
        // the per-receiver step takes the same locks, in the same order,
        // as `rx_accept_am` (`link_inc[t]` → `windows[t]` → `links`), so
        // a message toward `t` classifies either entirely before or
        // entirely after the surgery — never half-way.
        let new_inc = cs.incarnations[r].fetch_add(1, Ordering::SeqCst) + 1;
        let row_r = self.link_row(r);
        // Ledger rule: a live logical send holds exactly one `in_flight`
        // increment, retired exactly once — by `packet_processed`, by a
        // content-dedup consume, by retry exhaustion, or here: any entry
        // of the pre-crash `LinkTx` that is neither delivered (those
        // settle through the receiver/ack path) nor replayed (restored
        // entries were already retired by the scan that stranded them)
        // is discarded with the dead link, so its increment is refunded
        // now. Replay-marked copies are outside the ledger entirely
        // (their accept pre-pays the decrement), so no compensation
        // arithmetic is needed.
        let mut retired = 0u64;
        let mut out_links = out_links.into_iter();
        for t in 0..self.n {
            let restored = out_links.next().unwrap_or_default();
            if t == r {
                // Loopback: sender and receiver state are restored from
                // the *same snapshot instant*, so the restored window
                // dedups the restored link's retransmits exactly. The
                // live pre-crash entries are discarded with the dead
                // link (undelivered ones retired, like the cross-rank
                // rows), and the rank's own row incarnation is bumped
                // *without* resetting the window — the snapshot window
                // is installed right below — so leftover pre-kill copies
                // in this rank's own channel backlog classify stale and
                // drop, while replayed and re-executed copies under the
                // new incarnation classify Equal against snapshot state.
                // The live raw-seq counter is kept: re-executed sends
                // continue the raw space, so they can never collide with
                // replayed old raws whose acks are still arriving.
                let mut incs = cs.link_inc[r].lock();
                if incs[row_r] < new_inc {
                    incs[row_r] = new_inc;
                }
                let mut link = cs.links[self.link_idx(r, r)].lock();
                retired += link
                    .unacked
                    .values()
                    .filter(|e| !e.delivered && !e.replayed)
                    .count() as u64;
                let live_next = link.next_seq;
                *link = restored;
                link.next_seq = link.next_seq.max(live_next);
                continue;
            }
            let mut incs = cs.link_inc[t].lock();
            if incs[row_r] < new_inc {
                incs[row_r] = new_inc;
                cs.windows[t].lock()[row_r] = SeqWindow::new();
            }
            let mut link = cs.links[self.link_idx(r, t)].lock();
            retired += link
                .unacked
                .values()
                .filter(|e| !e.delivered && !e.replayed)
                .count() as u64;
            *link = restored;
        }
        self.in_flight.fetch_sub(retired as usize, Ordering::SeqCst);
        // Install the restored receive-side state.
        *cs.windows[r].lock() = windows;
        cs.rx_packets[r].store(rx_packets, Ordering::SeqCst);
        *cs.content_logs[r].lock() = logs;
        cs.accepted_since_snap[r].store(0, Ordering::SeqCst);
        cs.sent_since_snap[r].store(0, Ordering::SeqCst);
        // Drop stale batched acks the dead incarnation owed or was owed.
        for t in 0..self.n {
            let _ = cs.pending_acks[self.link_idx(t, r)].lock().take();
            let _ = cs.pending_acks[self.link_idx(r, t)].lock().take();
        }
        self.stats.restores.inc();
        // Replay while `killed[r]` is still latched: replay-marked
        // copies bypass the killed gate and fault injection, while any
        // concurrent live send toward `r` still drops at the gate. With
        // FIFO channel delivery this orders every replayed copy ahead
        // of the first post-restore send toward `r`. The restored
        // window dedups pre-snapshot seqs; the content log dedups
        // re-executed duplicates.
        let mut replayed = 0u64;
        for source_row in 0..=self.n {
            let li = source_row * self.n + r;
            let from: Rank = if source_row == self.n {
                usize::MAX
            } else {
                source_row
            };
            // Collect the log *before* scanning the live link below:
            // `send_am` inserts the unacked entry before pushing the log,
            // so any logged-but-unscanned send is also unmarked-and-live
            // and settles through its own retransmit path — there is no
            // interleaving where a send is both replayed here and left
            // holding its in-flight slot.
            let entries: Vec<(u64, u64, u32, Arc<Vec<u8>>)> = cs.replay_log[li]
                .lock()
                .iter()
                .map(|e| (e.inc, e.seq, e.handler, Arc::clone(&e.payload)))
                .collect();
            if source_row != r {
                // Peer (and sentinel-seed) sends toward `r` that never
                // reached it: the replay just collected re-drives their
                // content, so retire each one's in-flight slot and mark
                // the entry replayed — its future retransmits carry the
                // replay marker, window-dedup against the copy delivered
                // below, and a later restore scan skips it.
                let mut link = cs.links[li].lock();
                for e in link.unacked.values_mut() {
                    if !e.delivered && !e.replayed {
                        e.replayed = true;
                        retired += 1;
                        self.in_flight.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            }
            for (inc, seq, handler, payload) in entries {
                // Diagonal replays are re-packed under the rank's new
                // incarnation: surgery bumped the rank's own row, so a
                // copy under the logged (pre-crash) incarnation would be
                // stale-dropped on arrival.
                let inc = if source_row == r { new_inc } else { inc };
                self.transmit_packed(
                    cs,
                    from,
                    r,
                    handler,
                    pack_seq(inc, seq) | REPLAY_BIT,
                    &payload,
                    0,
                );
                replayed += 1;
            }
        }
        self.stats.replayed_sends.add(replayed);
        self.stats.recoveries.inc();
        // Only now does the rank rejoin the live fabric.
        cs.killed[r].store(false, Ordering::SeqCst);
        self.recovery_log.lock().push(CommError {
            kind: CommErrorKind::RankRecovered,
            from: None,
            to: Some(r),
            handler: None,
            seq: None,
            detail: format!(
                "restored from {} snapshot, replayed {replayed} logged sends, \
                 retired {retired} undelivered pre-crash sends",
                if section.is_some() { "last" } else { "no (empty)" },
            ),
        });
        Ok(())
    }

    /// Drain the informational recovery events (TTG046).
    pub fn take_recovery_events(&self) -> Vec<CommError> {
        std::mem::take(&mut *self.recovery_log.lock())
    }

    /// Deliver a shutdown packet to every rank, stop the reliability
    /// progress thread, and close the link layer (flushing pending sends
    /// and notifying peers).
    pub fn shutdown_all(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        if let Some(cs) = &self.chaos {
            cs.stop.store(true, Ordering::SeqCst);
        }
        for tx in &self.senders {
            let _ = tx.send(Packet::Shutdown);
        }
        match &self.wire {
            LinkLayer::Channels => {}
            LinkLayer::Mesh { endpoints, .. } => {
                for ep in endpoints {
                    ep.shutdown();
                }
            }
            LinkLayer::Remote(rs) => rs.endpoint.shutdown(),
        }
    }

    /// Register `data` as an RMA-readable region owned by `owner`.
    ///
    /// The region is released (and `on_release` runs) after `expected_gets`
    /// fetches. `expected_gets == 0` releases immediately.
    pub fn register_region(
        &self,
        owner: Rank,
        data: Arc<Vec<u8>>,
        expected_gets: usize,
        on_release: Option<Box<dyn FnOnce() + Send>>,
    ) -> RegionId {
        if expected_gets == 0 {
            if let Some(f) = on_release {
                f();
            }
            return 0;
        }
        let id = self.next_region.fetch_add(1, Ordering::Relaxed);
        self.regions[owner].lock().insert(
            id,
            Region {
                data,
                remaining: expected_gets,
                on_release,
            },
        );
        id
    }

    /// One-sided fetch of a region owned by `owner`.
    ///
    /// The calling rank obtains a zero-copy handle to the region bytes —
    /// emulating an RDMA read that does not involve the owner's CPU. The
    /// fetch that satisfies the region's expected count triggers release.
    ///
    /// A duplicate or late fetch of an already-released region is answered
    /// idempotently from a bounded cache of recently released regions; a
    /// fetch of a region the owner never held (or that has been evicted)
    /// returns [`RmaError::UnknownRegion`] — never a panic.
    pub fn rma_get(
        &self,
        caller: Rank,
        owner: Rank,
        id: RegionId,
    ) -> Result<Arc<Vec<u8>>, RmaError> {
        if let LinkLayer::Remote(rs) = &self.wire {
            if owner != rs.me {
                return self.rma_get_remote(rs, caller, owner, id);
            }
        }
        self.rma_get_local(caller, owner, id)
    }

    /// Cross-process one-sided fetch: send `RmaReq` to the owner and block
    /// (bounded) on the matching `RmaResp`. The emulated RDMA property is
    /// preserved from the caller's perspective — no task code on the owner
    /// runs — the owner's *transport* thread serves the read, standing in
    /// for its NIC.
    fn rma_get_remote(
        &self,
        rs: &RemoteState,
        caller: Rank,
        owner: Rank,
        id: RegionId,
    ) -> Result<Arc<Vec<u8>>, RmaError> {
        let fail = |detail: String| RmaError::Transport {
            caller,
            owner,
            id,
            detail,
        };
        let req = rs.next_req.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = std::sync::mpsc::channel();
        rs.rma_waiters.lock().insert(req, tx);
        let sent = rs.endpoint.link(owner).send(Frame::RmaReq {
            from: rs.me as u32,
            req,
            region: id,
        });
        if let Err(e) = sent {
            rs.rma_waiters.lock().remove(&req);
            let err = fail(e.to_string());
            self.record_error(CommError::from(err.clone()));
            return Err(err);
        }
        let rma_timeout = self.rma_timeout();
        match rx.recv_timeout(rma_timeout) {
            Ok(Some(data)) => {
                // The owning process fully accounts the RMA op; the caller
                // counts only the bytes it took off its own wire.
                self.stats.rx_bytes[caller].add(data.len() as u64);
                Ok(Arc::new(data))
            }
            Ok(None) => {
                let err = RmaError::UnknownRegion { caller, owner, id };
                self.record_error(CommError::from(err.clone()));
                Err(err)
            }
            Err(_) => {
                rs.rma_waiters.lock().remove(&req);
                let err = RmaError::Timeout {
                    caller,
                    owner,
                    id,
                    waited: rma_timeout,
                };
                self.record_error(CommError {
                    kind: CommErrorKind::RmaTimeout,
                    from: Some(caller),
                    to: Some(owner),
                    handler: None,
                    seq: None,
                    detail: format!("rma request {req} expired after {rma_timeout:?}"),
                });
                Err(err)
            }
        }
    }

    /// Same-process fetch from the region table (see [`Self::rma_get`]).
    fn rma_get_local(
        &self,
        caller: Rank,
        owner: Rank,
        id: RegionId,
    ) -> Result<Arc<Vec<u8>>, RmaError> {
        let looked_up = {
            let mut table = self.regions[owner].lock();
            match table.get_mut(&id) {
                None => None,
                Some(region) => {
                    let data = Arc::clone(&region.data);
                    region.remaining -= 1;
                    if region.remaining == 0 {
                        let region = table.remove(&id).unwrap();
                        Some((data, region.on_release, true))
                    } else {
                        Some((data, None, false))
                    }
                }
            }
        };
        let (data, release) = match looked_up {
            Some((data, release, consumed)) => {
                if consumed {
                    // Fully consumed: remember the bytes so duplicate or
                    // late gets racing this removal stay answerable. The
                    // cache is LRU: least-recently-served entries (front)
                    // are evicted first, so a region still fielding late
                    // duplicates survives churn from newer releases.
                    let mut cache = self.released[owner].lock();
                    if cache.len() >= RELEASED_CACHE {
                        cache.remove(0);
                        self.stats.rma_released_evictions.inc();
                    }
                    cache.push((id, Arc::clone(&data)));
                }
                (data, release)
            }
            None => {
                // Region gone from the live table: duplicate/late get.
                // A hit refreshes the entry to the back of the LRU order.
                let cached = {
                    let mut cache = self.released[owner].lock();
                    cache.iter().position(|(rid, _)| *rid == id).map(|pos| {
                        let entry = cache.remove(pos);
                        let data = Arc::clone(&entry.1);
                        cache.push(entry);
                        data
                    })
                };
                match cached {
                    Some(d) => {
                        self.stats.rma_stale_gets.inc();
                        // Served idempotently; no release side effects and
                        // no double-counted wire traffic.
                        return Ok(d);
                    }
                    None => {
                        let err = RmaError::UnknownRegion { caller, owner, id };
                        self.record_error(CommError::from(err.clone()));
                        return Err(err);
                    }
                }
            }
        };
        if caller != owner {
            let bytes = data.len() as u64;
            self.stats.rma_gets.inc();
            self.stats.rma_bytes.add(bytes);
            self.stats.tx_bytes[owner].add(bytes);
            self.stats.rx_bytes[caller].add(bytes);
            #[cfg(feature = "telemetry")]
            ttg_telemetry::instant(
                Some(caller as u32),
                "comm",
                "rma_get",
                &[("owner", owner as u64), ("bytes", bytes)],
            );
        }
        if let Some(f) = release {
            f();
        }
        Ok(data)
    }

    /// Number of live (unreleased) regions owned by `rank`.
    pub fn live_regions(&self, rank: Rank) -> usize {
        self.regions[rank].lock().len()
    }

    /// Block until all ranks reach the barrier (used by BSP comparators
    /// and the multi-process start/stop fences).
    ///
    /// In-process fabrics use a shared-memory barrier. Multi-process ranks
    /// run a coordinator protocol instead: everyone sends `BarrierEnter`
    /// for their next epoch ordinal to rank 0, which broadcasts
    /// `BarrierRelease` once all `n` ranks have entered. All ranks must
    /// call `barrier()` the same number of times (SPMD), so ordinals align
    /// without clock agreement.
    pub fn barrier(&self) {
        let LinkLayer::Remote(rs) = &self.wire else {
            self.barrier.wait();
            return;
        };
        let epoch = rs.barrier_seq.fetch_add(1, Ordering::SeqCst) + 1;
        if rs.me == 0 {
            self.barrier_arrive(rs, epoch);
        } else if let Err(e) = rs.endpoint.link(0).send(Frame::BarrierEnter {
            from: rs.me as u32,
            epoch,
        }) {
            self.transport_send_failed(rs.me, 0, None, e);
        }
        let mut released = rs.barrier_released.lock();
        while *released < epoch {
            rs.barrier_cv.wait(&mut released);
        }
    }

    /// Record that a serialization pass happened (for the copy-count
    /// ablation).
    pub fn count_serialization(&self) {
        self.stats.serializations.inc();
    }

    /// Record a deep data copy performed by a backend.
    pub fn count_data_copy(&self) {
        self.stats.data_copies.inc();
    }

    /// Record what the optimized broadcast saved versus naive per-key
    /// sends: `sends_saved` skipped AMs and `bytes_saved` re-serialized
    /// payload bytes that never had to be produced.
    pub fn count_broadcast_dedup(&self, sends_saved: u64, bytes_saved: u64) {
        self.stats.bcast_sends_saved.add(sends_saved);
        self.stats.bcast_bytes_saved.add(bytes_saved);
    }
}

/// Body of the reliability progress thread: ticks the retransmission and
/// delayed-release engine until the fabric shuts down or is dropped.
fn progress_loop(fabric: Weak<Fabric>) {
    loop {
        let Some(f) = fabric.upgrade() else { return };
        if let Some(cs) = &f.chaos {
            if cs.stop.load(Ordering::SeqCst) {
                return;
            }
        }
        f.progress();
        drop(f);
        std::thread::sleep(PROGRESS_TICK);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn am_roundtrip_between_ranks() {
        let fabric = Fabric::new(2);
        let rx1 = fabric.take_receiver(1);
        fabric.send_am(0, 1, 7, vec![1, 2, 3]).unwrap();
        match rx1.recv().unwrap() {
            Packet::Am {
                handler,
                from,
                seq,
                payload,
            } => {
                assert_eq!(handler, 7);
                assert_eq!(from, 0);
                assert_eq!(seq, 0);
                assert_eq!(payload, vec![1, 2, 3]);
            }
            other => panic!("unexpected packet {:?}", other),
        }
        let s = fabric.stats().snapshot();
        assert_eq!(s.am_count, 1);
        assert_eq!(s.am_bytes, 3);
        fabric.packet_processed();
        assert_eq!(fabric.packets_in_flight(), 0);
    }

    #[test]
    fn local_am_not_counted_as_wire_traffic() {
        let fabric = Fabric::new(1);
        let rx = fabric.take_receiver(0);
        fabric.send_am(0, 0, 1, vec![0; 64]).unwrap();
        let _ = rx.recv().unwrap();
        let s = fabric.stats().snapshot();
        assert_eq!(s.am_count, 0);
        assert_eq!(s.am_bytes, 0);
        assert_eq!(s.local_deliveries, 1);
    }

    #[test]
    fn send_to_closed_rank_is_counted_error_not_panic() {
        let fabric = Fabric::new(2);
        {
            let _rx = fabric.take_receiver(1);
            // Receiver dropped here: rank 1's channel closes.
        }
        let err = fabric
            .send_am(0, 1, 7, vec![1, 2, 3])
            .expect_err("closed channel must error");
        assert_eq!(err, SendError { from: 0, to: 1 });
        let s = fabric.stats().snapshot();
        assert_eq!(s.post_shutdown_sends, 1);
        // No phantom in-flight packet and no wire accounting for the no-op.
        assert_eq!(fabric.packets_in_flight(), 0);
        assert_eq!(s.am_count, 0);
    }

    #[test]
    fn rma_region_lifecycle() {
        let fabric = Fabric::new(3);
        let released = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&released);
        let data = Arc::new(vec![9u8; 128]);
        let id = fabric.register_region(
            0,
            data,
            2,
            Some(Box::new(move || flag.store(true, Ordering::SeqCst))),
        );
        assert_eq!(fabric.live_regions(0), 1);

        let d1 = fabric.rma_get(1, 0, id).unwrap();
        assert_eq!(d1.len(), 128);
        assert!(!released.load(Ordering::SeqCst));
        assert_eq!(fabric.live_regions(0), 1);

        let d2 = fabric.rma_get(2, 0, id).unwrap();
        assert_eq!(d2.len(), 128);
        assert!(released.load(Ordering::SeqCst));
        assert_eq!(fabric.live_regions(0), 0);

        let s = fabric.stats().snapshot();
        assert_eq!(s.rma_gets, 2);
        assert_eq!(s.rma_bytes, 256);
    }

    #[test]
    fn duplicate_get_after_release_is_idempotent() {
        let fabric = Fabric::new(2);
        let id = fabric.register_region(0, Arc::new(vec![5u8; 16]), 1, None);
        let first = fabric.rma_get(1, 0, id).unwrap();
        assert_eq!(fabric.live_regions(0), 0);
        // A duplicated/late get racing the release: answered from the
        // idempotency cache, no panic, no double release.
        let dup = fabric.rma_get(1, 0, id).unwrap();
        assert_eq!(*dup, *first);
        let s = fabric.stats().snapshot();
        assert_eq!(s.rma_stale_gets, 1);
        // Wire traffic counted once only (the idempotent answer is free).
        assert_eq!(s.rma_gets, 1);
    }

    #[test]
    fn released_cache_is_lru_with_bounded_size_and_eviction_counter() {
        let fabric = Fabric::new(2);
        // Release the probe region first, then churn the cache to one slot
        // short of evicting it.
        let probe = fabric.register_region(0, Arc::new(vec![9u8; 8]), 1, None);
        let _ = fabric.rma_get(1, 0, probe).unwrap();
        for _ in 0..RELEASED_CACHE - 1 {
            let id = fabric.register_region(0, Arc::new(vec![0u8; 8]), 1, None);
            let _ = fabric.rma_get(1, 0, id).unwrap();
        }
        assert_eq!(fabric.stats().snapshot().rma_released_evictions, 0);
        // A stale hit refreshes the probe to most-recently-used...
        let dup = fabric.rma_get(1, 0, probe).unwrap();
        assert_eq!(*dup, vec![9u8; 8]);
        // ...so the next release evicts the oldest *other* entry and the
        // probe stays answerable, while the cache stays at its cap.
        let id = fabric.register_region(0, Arc::new(vec![0u8; 8]), 1, None);
        let _ = fabric.rma_get(1, 0, id).unwrap();
        let s = fabric.stats().snapshot();
        assert_eq!(s.rma_released_evictions, 1);
        let dup2 = fabric.rma_get(1, 0, probe).unwrap();
        assert_eq!(*dup2, vec![9u8; 8]);
        // Without the LRU refresh the probe (oldest insert) would have
        // been the eviction victim and this get would be UnknownRegion.
    }

    #[test]
    fn unknown_region_is_structured_error_not_panic() {
        let fabric = Fabric::new(2);
        let err = fabric
            .rma_get(1, 0, 999)
            .expect_err("unknown region must error");
        assert_eq!(
            err,
            RmaError::UnknownRegion {
                caller: 1,
                owner: 0,
                id: 999
            }
        );
        let errors = fabric.take_errors();
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].kind, CommErrorKind::UnknownRegion);
        assert_eq!(errors[0].code(), "TTG044");
    }

    #[test]
    fn zero_consumer_region_releases_immediately() {
        let fabric = Fabric::new(1);
        let released = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&released);
        fabric.register_region(
            0,
            Arc::new(vec![1]),
            0,
            Some(Box::new(move || flag.store(true, Ordering::SeqCst))),
        );
        assert!(released.load(Ordering::SeqCst));
        assert_eq!(fabric.live_regions(0), 0);
    }

    #[test]
    fn barrier_synchronizes_ranks() {
        let fabric = Fabric::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let f = Arc::clone(&fabric);
            let c = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                c.fetch_add(1, Ordering::SeqCst);
                f.barrier();
                // After the barrier every rank must observe all increments.
                assert_eq!(c.load(Ordering::SeqCst), 4);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn stats_and_registry_share_cells() {
        let fabric = Fabric::new(2);
        let _rx = fabric.take_receiver(1);
        fabric.send_am(0, 1, 3, vec![7u8; 40]).unwrap();
        fabric.count_serialization();
        fabric.count_broadcast_dedup(5, 320);

        let legacy = fabric.stats().snapshot();
        let reg = fabric.telemetry().snapshot();
        assert_eq!(
            reg.counter(&MetricKey::global("comm", "am_count")),
            legacy.am_count
        );
        assert_eq!(reg.counter(&MetricKey::global("comm", "am_bytes")), 40);
        assert_eq!(
            reg.counter(&MetricKey::global("comm", "serializations")),
            legacy.serializations
        );
        assert_eq!(
            reg.counter(&MetricKey::global("comm", "bcast_sends_saved")),
            5
        );
        assert_eq!(legacy.bcast_bytes_saved, 320);
        assert_eq!(reg.counter(&MetricKey::ranked(0, "comm", "tx_bytes")), 40);
        assert_eq!(reg.counter(&MetricKey::ranked(1, "comm", "rx_bytes")), 40);
        assert_eq!(reg.counter(&MetricKey::ranked(1, "comm", "tx_bytes")), 0);
    }

    #[test]
    fn shutdown_reaches_every_rank() {
        let fabric = Fabric::new(2);
        let rx0 = fabric.take_receiver(0);
        let rx1 = fabric.take_receiver(1);
        fabric.shutdown_all();
        assert!(matches!(rx0.recv().unwrap(), Packet::Shutdown));
        assert!(matches!(rx1.recv().unwrap(), Packet::Shutdown));
    }

    // ---- reliable-delivery layer -------------------------------------

    /// Drain one packet, classify through `rx_accept`, return whether it
    /// was fresh.
    fn pump(fabric: &Fabric, rx: &Receiver<Packet>, rank: Rank) -> Option<bool> {
        match rx.try_recv().ok()? {
            Packet::Am { from, seq, .. } => {
                let fresh = fabric.rx_accept(rank, from, seq);
                if fresh {
                    fabric.packet_processed();
                }
                Some(fresh)
            }
            Packet::Shutdown => None,
        }
    }

    #[test]
    fn reliable_layer_sequences_and_delivers_exactly_once() {
        let plan = FaultPlan::seeded(1);
        let fabric = Fabric::with_faults(2, Some(plan));
        let rx1 = fabric.take_receiver(1);
        for _ in 0..10 {
            fabric.send_am(0, 1, 7, vec![1]).unwrap();
        }
        let mut fresh = 0;
        while let Some(f) = pump(&fabric, &rx1, 1) {
            if f {
                fresh += 1;
            }
        }
        assert_eq!(fresh, 10);
        assert_eq!(fabric.packets_in_flight(), 0);
        assert_eq!(fabric.stats().snapshot().am_dedup_hits, 0);
    }

    #[test]
    fn injected_duplicates_are_deduped() {
        let plan = FaultPlan::seeded(3).with_dup(1.0);
        let fabric = Fabric::with_faults(2, Some(plan));
        let rx1 = fabric.take_receiver(1);
        for _ in 0..5 {
            fabric.send_am(0, 1, 7, vec![2]).unwrap();
        }
        let mut fresh = 0;
        let mut dups = 0;
        while let Some(f) = pump(&fabric, &rx1, 1) {
            if f {
                fresh += 1;
            } else {
                dups += 1;
            }
        }
        assert_eq!(fresh, 5, "logical delivery must stay exactly-once");
        assert_eq!(dups, 5, "every duplicate must be rejected");
        let s = fabric.stats().snapshot();
        assert_eq!(s.am_dup_injected, 5);
        assert_eq!(s.am_dedup_hits, 5);
        assert_eq!(s.am_count, 5, "logical AM count unaffected by duplication");
        assert_eq!(fabric.packets_in_flight(), 0);
    }

    #[test]
    fn dropped_packets_are_retransmitted() {
        // Drop every original transmission (attempt 0) — the deterministic
        // rolls differ per attempt, so retransmits eventually pass. Use a
        // plan with drop=0.5 and enough budget.
        let mut plan = FaultPlan::seeded(11).with_drop(0.5);
        plan.retry.base = Duration::from_micros(50);
        plan.retry.cap = Duration::from_micros(400);
        let fabric = Fabric::with_faults(2, Some(plan));
        let rx1 = fabric.take_receiver(1);
        let n = 40;
        for _ in 0..n {
            fabric.send_am(0, 1, 7, vec![3]).unwrap();
        }
        let mut fresh = 0;
        let deadline = Instant::now() + Duration::from_secs(10);
        while fresh < n && Instant::now() < deadline {
            // The progress thread is running, but tick explicitly too so
            // the test does not depend on scheduler timing.
            fabric.progress();
            while let Some(f) = pump(&fabric, &rx1, 1) {
                if f {
                    fresh += 1;
                }
            }
            std::thread::sleep(Duration::from_micros(100));
        }
        assert_eq!(fresh, n, "all logical packets must eventually deliver");
        assert_eq!(fabric.packets_in_flight(), 0);
        let s = fabric.stats().snapshot();
        assert!(s.am_retries > 0, "drops must force retransmissions");
        assert!(s.am_dropped_injected > 0);
    }

    #[test]
    fn batched_acks_retire_unacked_in_few_flushes() {
        // Default plan: batching on, 100 µs flush timer, no loss. Twenty
        // messages must be acknowledged by far fewer flush events, and
        // every sequence must be covered by a batched range.
        let plan = FaultPlan::seeded(31);
        let fabric = Fabric::with_faults(2, Some(plan));
        let rx1 = fabric.take_receiver(1);
        let n = 20;
        for _ in 0..n {
            fabric.send_am(0, 1, 7, vec![6]).unwrap();
        }
        while pump(&fabric, &rx1, 1).is_some() {}
        // Let the flush timer come due, then tick explicitly so the test
        // does not depend on the progress thread's scheduling.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            fabric.progress();
            let s = fabric.stats().snapshot();
            if s.acks_batched == n || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_micros(100));
        }
        let s = fabric.stats().snapshot();
        assert_eq!(s.acks_batched, n, "every sequence must be range-acked");
        assert!(s.ack_flushes >= 1);
        assert!(
            s.ack_flushes < n,
            "batching must use fewer flushes ({}) than messages ({n})",
            s.ack_flushes
        );
        // No retransmissions: the flush beat the 300 µs retry backoff.
        assert_eq!(fabric.packets_in_flight(), 0);
    }

    #[test]
    fn acks_piggyback_on_reverse_traffic() {
        // Disable the flush timer (5 s) so the only way the ack can move
        // is by riding the next reverse-direction data frame.
        let plan = FaultPlan::seeded(33).with_ack_flush(Duration::from_secs(5));
        let fabric = Fabric::with_faults(2, Some(plan));
        let rx0 = fabric.take_receiver(0);
        let rx1 = fabric.take_receiver(1);
        fabric.send_am(0, 1, 7, vec![7]).unwrap();
        assert_eq!(pump(&fabric, &rx1, 1), Some(true));
        let s = fabric.stats().snapshot();
        assert_eq!(s.ack_flushes, 0, "timer off: nothing flushed yet");
        // Reverse traffic carries the pending ack.
        fabric.send_am(1, 0, 7, vec![8]).unwrap();
        assert_eq!(pump(&fabric, &rx0, 0), Some(true));
        let s = fabric.stats().snapshot();
        assert_eq!(s.acks_piggybacked, 1);
        assert_eq!(s.acks_batched, 1);
        assert_eq!(s.ack_flushes, 1);
        assert_eq!(fabric.packets_in_flight(), 0);
    }

    #[test]
    fn immediate_ack_mode_flushes_once_per_message() {
        // The A/B baseline lever: one flush event per received message,
        // nothing batched, nothing piggybacked.
        let plan = FaultPlan::seeded(35).with_immediate_acks();
        let fabric = Fabric::with_faults(2, Some(plan));
        let rx1 = fabric.take_receiver(1);
        let n = 10;
        for _ in 0..n {
            fabric.send_am(0, 1, 7, vec![9]).unwrap();
        }
        while pump(&fabric, &rx1, 1).is_some() {}
        let s = fabric.stats().snapshot();
        assert_eq!(s.ack_flushes, n, "one ack per message in immediate mode");
        assert_eq!(s.acks_batched, 0);
        assert_eq!(s.acks_piggybacked, 0);
        assert_eq!(fabric.packets_in_flight(), 0);
    }

    #[test]
    fn dead_link_exhausts_budget_and_reports() {
        // Rank 1 dies before anything arrives: every packet to it is
        // dropped, the budget runs out, and the loss is reported.
        let mut plan = FaultPlan::seeded(5).with_kill(1, 0);
        plan.retry = crate::fault::RetryPolicy {
            base: Duration::from_micros(20),
            cap: Duration::from_micros(100),
            max_retries: 3,
        };
        let fabric = Fabric::with_faults(2, Some(plan));
        let _rx1 = fabric.take_receiver(1);
        fabric.send_am(0, 1, 9, vec![4, 4]).unwrap();
        assert_eq!(fabric.packets_in_flight(), 1);
        let deadline = Instant::now() + Duration::from_secs(5);
        while fabric.packets_in_flight() > 0 && Instant::now() < deadline {
            fabric.progress();
            std::thread::sleep(Duration::from_micros(50));
        }
        assert_eq!(
            fabric.packets_in_flight(),
            0,
            "abandoned packet must retire its in-flight slot"
        );
        let errors = fabric.take_errors();
        assert_eq!(errors.len(), 1, "exactly one loss report");
        assert_eq!(errors[0].kind, CommErrorKind::RetryBudgetExhausted);
        assert_eq!(errors[0].code(), "TTG040");
        assert_eq!(errors[0].from, Some(0));
        assert_eq!(errors[0].to, Some(1));
        let s = fabric.stats().snapshot();
        assert_eq!(s.am_retry_exhausted, 1);
    }

    #[test]
    fn delayed_packets_are_released_by_progress() {
        let mut plan = FaultPlan::seeded(21).with_delay(1.0);
        plan.delay_us = (100, 200);
        let fabric = Fabric::with_faults(2, Some(plan));
        let rx1 = fabric.take_receiver(1);
        fabric.send_am(0, 1, 7, vec![5]).unwrap();
        // Held: nothing arrives immediately.
        assert!(rx1.try_recv().is_err());
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut fresh = 0;
        while fresh == 0 && Instant::now() < deadline {
            fabric.progress();
            if let Some(true) = pump(&fabric, &rx1, 1) {
                fresh += 1;
            }
            std::thread::sleep(Duration::from_micros(50));
        }
        assert_eq!(fresh, 1);
        assert!(fabric.stats().snapshot().am_delayed_injected >= 1);
    }

    // ---- socket-mesh link layer --------------------------------------

    /// Wait for one AM on `rx` (socket delivery is asynchronous).
    fn recv_am(rx: &Receiver<Packet>) -> Packet {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Ok(p) = rx.try_recv() {
                return p;
            }
            assert!(Instant::now() < deadline, "no packet within deadline");
            std::thread::sleep(Duration::from_micros(100));
        }
    }

    #[test]
    fn tcp_mesh_carries_inter_rank_ams() {
        let fabric = Fabric::with_transport(2, None, &TransportSpec::Tcp).unwrap();
        let rx1 = fabric.take_receiver(1);
        fabric.send_am(0, 1, 7, vec![1, 2, 3]).unwrap();
        match recv_am(&rx1) {
            Packet::Am {
                handler,
                from,
                payload,
                ..
            } => {
                assert_eq!(handler, 7);
                assert_eq!(from, 0);
                assert_eq!(payload, vec![1, 2, 3]);
            }
            other => panic!("unexpected packet {other:?}"),
        }
        fabric.packet_processed();
        let s = fabric.stats().snapshot();
        assert_eq!(s.am_count, 1);
        assert!(
            s.transport_tx_bytes > 0 && s.transport_rx_bytes > 0,
            "AM must have crossed the socket: {s:?}"
        );
        assert!(s.transport_connects >= 1);
        fabric.shutdown_all();
    }

    #[test]
    fn mesh_loopback_and_sentinel_stay_on_channels() {
        let fabric = Fabric::with_transport(2, None, &TransportSpec::Uds).unwrap();
        let rx0 = fabric.take_receiver(0);
        let tx_before = fabric.stats().snapshot().transport_tx_bytes;
        fabric.send_am(0, 0, 1, vec![9]).unwrap();
        fabric.send_am(usize::MAX, 0, 1, vec![8]).unwrap();
        assert!(matches!(recv_am(&rx0), Packet::Am { from: 0, .. }));
        assert!(matches!(
            recv_am(&rx0),
            Packet::Am {
                from: usize::MAX,
                ..
            }
        ));
        let s = fabric.stats().snapshot();
        assert_eq!(
            s.transport_tx_bytes, tx_before,
            "process-internal deliveries must not touch the socket"
        );
        assert_eq!(s.local_deliveries, 1);
        fabric.shutdown_all();
    }

    #[test]
    fn chaos_over_uds_mesh_delivers_exactly_once() {
        let plan = FaultPlan::seeded(3).with_dup(1.0);
        let fabric = Fabric::with_transport(2, Some(plan), &TransportSpec::Uds).unwrap();
        let rx1 = fabric.take_receiver(1);
        let n = 5;
        for _ in 0..n {
            fabric.send_am(0, 1, 7, vec![2]).unwrap();
        }
        let mut fresh = 0;
        let deadline = Instant::now() + Duration::from_secs(10);
        while fresh < n && Instant::now() < deadline {
            fabric.progress();
            while let Ok(Packet::Am { from, seq, .. }) = rx1.try_recv() {
                if fabric.rx_accept(1, from, seq) {
                    fabric.packet_processed();
                    fresh += 1;
                }
            }
            std::thread::sleep(Duration::from_micros(100));
        }
        assert_eq!(fresh, n, "logical delivery must stay exactly-once");
        assert_eq!(fabric.packets_in_flight(), 0);
        let s = fabric.stats().snapshot();
        // Socket latency can outlast the retry timer, and every retransmit
        // attempt rolls its own dup decision — so at least one per send.
        assert!(s.am_dup_injected >= n as u64);
        assert!(s.transport_tx_bytes > 0, "chaos copies crossed the socket");
        fabric.shutdown_all();
    }

    #[test]
    fn remote_spec_rejects_probabilistic_fault_plans() {
        // Build a 2-process-style endpoint pair in-process via the
        // transport's own mesh to get a RemoteHandle-shaped spec.
        let reg = Arc::new(Registry::new());
        let eps = ttg_transport::local_mesh(ttg_transport::TransportKind::Tcp, 2, &reg).unwrap();
        let handle = ttg_transport::RemoteHandle {
            endpoint: Arc::clone(&eps[0]) as Arc<dyn Endpoint>,
            registry: Arc::clone(&reg),
        };
        let res = Fabric::with_transport(
            2,
            Some(FaultPlan::seeded(1).with_drop(0.05)),
            &TransportSpec::Remote(handle),
        );
        let err = match res {
            Ok(_) => panic!("probabilistic fault plan over remote must be refused"),
            Err(e) => e,
        };
        assert_eq!(err.kind, CommErrorKind::TransportFailure);
        assert_eq!(err.code(), "TTG045");
        for ep in &eps {
            ep.shutdown();
        }
    }

    #[test]
    fn remote_spec_accepts_kill_scripts_but_not_kill_zero() {
        let reg = Arc::new(Registry::new());
        let eps = ttg_transport::local_mesh(ttg_transport::TransportKind::Tcp, 2, &reg).unwrap();
        let handle = ttg_transport::RemoteHandle {
            endpoint: Arc::clone(&eps[1]) as Arc<dyn Endpoint>,
            registry: Arc::clone(&reg),
        };
        // kill=1@n on a real process-shaped endpoint is accepted...
        let f = Fabric::with_transport(
            2,
            Some(FaultPlan::seeded(1).with_kill(1, 1_000_000)),
            &TransportSpec::Remote(handle.clone()),
        )
        .expect("kill-only plan must be accepted in remote mode");
        f.shutdown_all();
        // ...but killing the coordinator is refused with a clear TTG045.
        let res = Fabric::with_transport(
            2,
            Some(FaultPlan::seeded(1).with_kill(0, 5)),
            &TransportSpec::Remote(handle),
        );
        let err = res.err().expect("kill=0 must be refused");
        assert_eq!(err.code(), "TTG045");
        assert!(err.detail.contains("rank 0"), "{}", err.detail);
        for ep in &eps {
            ep.shutdown();
        }
    }

    #[test]
    fn rma_timeout_is_configurable_and_structured() {
        // Rank 0's fabric fetches from rank 1, whose endpoint exists (the
        // mesh handshake completes) but has no fabric attached — so no
        // RmaResp ever arrives and the configured timeout must expire as
        // a structured TTG049, never a hang or a panic.
        let reg = Arc::new(Registry::new());
        let eps = ttg_transport::local_mesh(ttg_transport::TransportKind::Tcp, 2, &reg).unwrap();
        let handle = ttg_transport::RemoteHandle {
            endpoint: Arc::clone(&eps[0]) as Arc<dyn Endpoint>,
            registry: Arc::clone(&reg),
        };
        let f = Fabric::with_transport(2, None, &TransportSpec::Remote(handle)).unwrap();
        assert_eq!(
            f.rma_timeout(),
            RMA_REMOTE_TIMEOUT,
            "default timeout must be the historical constant"
        );
        f.set_rma_timeout(Duration::from_millis(50));
        let start = Instant::now();
        let err = f.rma_get(0, 1, 7).expect_err("silent owner must time out");
        assert!(
            matches!(
                err,
                RmaError::Timeout {
                    caller: 0,
                    owner: 1,
                    id: 7,
                    ..
                }
            ),
            "got: {err}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "expiry must honor the configured timeout, not the default"
        );
        let errs = f.take_errors();
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert_eq!(errs[0].kind, CommErrorKind::RmaTimeout);
        assert_eq!(errs[0].code(), "TTG049");
        assert_eq!(errs[0].from, Some(0));
        assert_eq!(errs[0].to, Some(1));
        f.shutdown_all();
        for ep in &eps {
            ep.shutdown();
        }
    }

    #[test]
    fn loopback_bypasses_chaos() {
        let plan = FaultPlan::seeded(2).with_drop(1.0);
        let fabric = Fabric::with_faults(2, Some(plan));
        let rx0 = fabric.take_receiver(0);
        fabric.send_am(0, 0, 1, vec![9]).unwrap();
        // Local delivery is immediate even under 100% drop.
        assert!(matches!(rx0.recv().unwrap(), Packet::Am { seq: 0, .. }));
        assert_eq!(fabric.stats().snapshot().local_deliveries, 1);
    }
}
