//! Simulated distributed communication fabric.
//!
//! The paper runs on MPI clusters; this module replaces the physical wire
//! with an in-process fabric of `n` logical **ranks**. Everything above the
//! wire is real: inter-rank messages are serialized into byte buffers and
//! travel through channels (the *eager* / active-message path), and large
//! payloads can be registered as memory **regions** and fetched one-sidedly
//! by the receiver (the *RMA* path used by the split-metadata protocol).
//!
//! RMA is emulated by letting the requesting rank read the registered region
//! directly, without involving the owner's CPU threads — exactly the property
//! real RDMA hardware provides. Once every expected consumer has fetched a
//! region it is released and its completion callback runs (the paper's
//! "sender is notified to release the source object").
//!
//! ## Faults and reliable delivery
//!
//! By default the channels are a perfect network. Installing a
//! [`FaultPlan`] (see [`Fabric::with_faults`]) interposes a chaos layer on
//! every inter-rank AM — seeded drop/duplicate/delay/reorder decisions and
//! scripted rank deaths — together with a reliable-delivery protocol
//! (per-link sequence numbers, receive-side dedup windows, ack +
//! exponential-backoff retransmit with a bounded retry budget; see
//! [`crate::reliable`]). Logical delivery stays exactly-once; a packet that
//! exhausts its retry budget is converted into a structured [`CommError`]
//! instead of a panic or a silent hang. Errors from any comm path
//! accumulate in the fabric's error sink and surface in execution reports.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Weak};
use std::time::{Duration, Instant};

use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use ttg_telemetry::{Counter, MetricKey, Registry};

use crate::fault::{salt, FaultPlan};
use crate::reliable::{LinkTx, SeqWindow, Unacked};

/// Logical process rank within the fabric.
pub type Rank = usize;

/// Identifier of a registered RMA region, unique per fabric.
pub type RegionId = u64;

/// Released regions kept around to answer duplicated or late one-sided
/// fetches idempotently instead of aborting the owner.
const RELEASED_CACHE: usize = 64;

/// Retransmit/delay progress-thread tick.
const PROGRESS_TICK: Duration = Duration::from_micros(100);

/// A packet travelling between ranks.
#[derive(Debug)]
pub enum Packet {
    /// Active message: invoke `handler` on the destination with `payload`.
    Am {
        /// Destination-side handler index (e.g. template-task id).
        handler: u32,
        /// Sending rank.
        from: Rank,
        /// Per-link sequence number under reliable delivery (0 when the
        /// reliable layer is off or the message is rank-local).
        seq: u64,
        /// Serialized message body.
        payload: Vec<u8>,
    },
    /// Orderly shutdown of the destination's progress loop.
    Shutdown,
}

/// Why a send could not be handed to the fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendError {
    /// Sending rank (may be the external-seed sentinel).
    pub from: Rank,
    /// Destination rank whose channel is gone.
    pub to: Rank,
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fabric channel to rank {} closed (send from rank {})",
            self.to, self.from
        )
    }
}

impl std::error::Error for SendError {}

/// Why a one-sided fetch failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RmaError {
    /// The region id is not registered on the owner (already fully
    /// released and evicted from the idempotency cache, or never existed).
    UnknownRegion {
        /// Fetching rank.
        caller: Rank,
        /// Alleged owner.
        owner: Rank,
        /// The unknown region id.
        id: RegionId,
    },
}

impl std::fmt::Display for RmaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RmaError::UnknownRegion { caller, owner, id } => write!(
                f,
                "rma_get of unknown region {id} on rank {owner} (caller rank {caller})"
            ),
        }
    }
}

impl std::error::Error for RmaError {}

/// Classification of a structured communication failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommErrorKind {
    /// A logical packet was abandoned after exhausting its retransmission
    /// budget (dead link / dead rank).
    RetryBudgetExhausted,
    /// A send hit a closed per-rank channel (destination shut down).
    ChannelClosed,
    /// An active message arrived but its delivery failed (decode error,
    /// missing region, handler fault).
    DeliveryFailed,
    /// A one-sided fetch named a region the owner does not hold.
    UnknownRegion,
    /// The execution did not reach quiescence within its delivery
    /// deadline.
    DeadlineMissed,
}

impl CommErrorKind {
    /// Stable diagnostic code (rendered by `ttg-check`, DESIGN §8).
    pub fn code(&self) -> &'static str {
        match self {
            CommErrorKind::RetryBudgetExhausted => "TTG040",
            CommErrorKind::DeadlineMissed => "TTG041",
            CommErrorKind::ChannelClosed => "TTG042",
            CommErrorKind::DeliveryFailed => "TTG043",
            CommErrorKind::UnknownRegion => "TTG044",
        }
    }
}

/// A structured communication failure, recorded in the fabric's error sink
/// instead of panicking, and surfaced through execution reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommError {
    /// What went wrong.
    pub kind: CommErrorKind,
    /// Sending rank, when known.
    pub from: Option<Rank>,
    /// Destination rank, when known.
    pub to: Option<Rank>,
    /// Destination handler (template-task id), when known.
    pub handler: Option<u32>,
    /// Link sequence number, when known.
    pub seq: Option<u64>,
    /// Human-readable context.
    pub detail: String,
}

impl CommError {
    /// Stable diagnostic code of this error's kind.
    pub fn code(&self) -> &'static str {
        self.kind.code()
    }
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {:?}", self.code(), self.kind)?;
        if let (Some(from), Some(to)) = (self.from, self.to) {
            write!(f, " on link {from}->{to}")?;
        } else if let Some(to) = self.to {
            write!(f, " on rank {to}")?;
        }
        if let Some(seq) = self.seq {
            write!(f, " seq {seq}")?;
        }
        if !self.detail.is_empty() {
            write!(f, ": {}", self.detail)?;
        }
        Ok(())
    }
}

impl From<SendError> for CommError {
    fn from(e: SendError) -> Self {
        CommError {
            kind: CommErrorKind::ChannelClosed,
            from: Some(e.from),
            to: Some(e.to),
            handler: None,
            seq: None,
            detail: e.to_string(),
        }
    }
}

impl From<RmaError> for CommError {
    fn from(e: RmaError) -> Self {
        let RmaError::UnknownRegion { caller, owner, id } = e;
        CommError {
            kind: CommErrorKind::UnknownRegion,
            from: Some(owner),
            to: Some(caller),
            handler: None,
            seq: Some(id),
            detail: format!("region {id}"),
        }
    }
}

struct Region {
    data: Arc<Vec<u8>>,
    remaining: usize,
    on_release: Option<Box<dyn FnOnce() + Send>>,
}

/// Aggregate communication counters for a fabric (all ranks).
///
/// Since the telemetry migration these are handles into the fabric's
/// [`Registry`] (subsystem `"comm"`), so the same cells feed both this
/// legacy accessor and registry snapshots/JSON exports. Updates remain
/// single relaxed atomic ops, as with the previous ad-hoc `AtomicU64`s.
#[derive(Debug)]
pub struct FabricStats {
    /// Active messages sent between distinct ranks (logical count: fault
    /// retransmits and injected duplicates are not re-counted here).
    am_count: Counter,
    /// Bytes moved through active messages.
    am_bytes: Counter,
    /// One-sided region fetches.
    rma_gets: Counter,
    /// Bytes moved through RMA fetches.
    rma_bytes: Counter,
    /// Messages delivered without leaving the rank.
    local_deliveries: Counter,
    /// Number of serialization passes performed (copies into wire buffers).
    serializations: Counter,
    /// Number of deep data copies performed by backends (clone-on-send).
    data_copies: Counter,
    /// Broadcast sends avoided by the optimized one-AM-per-rank broadcast.
    bcast_sends_saved: Counter,
    /// Bytes not re-serialized thanks to broadcast deduplication.
    bcast_bytes_saved: Counter,
    /// Physical retransmissions performed by the reliable layer.
    am_retries: Counter,
    /// Physical packets dropped by fault injection (incl. dead-rank drops).
    am_dropped_injected: Counter,
    /// Physical packets duplicated by fault injection.
    am_dup_injected: Counter,
    /// Physical packets held back (delay/reorder injection).
    am_delayed_injected: Counter,
    /// Duplicate receptions rejected by the receive-side dedup window.
    am_dedup_hits: Counter,
    /// Logical packets abandoned after the retry budget ran out.
    am_retry_exhausted: Counter,
    /// Sends that hit a closed channel (post-shutdown no-ops).
    post_shutdown_sends: Counter,
    /// Late/duplicate one-sided fetches answered from the released-region
    /// idempotency cache.
    rma_stale_gets: Counter,
    /// Executions that missed their delivery deadline.
    delivery_deadline_misses: Counter,
    /// Per-rank bytes put on the wire (AM payloads + RMA reads served).
    tx_bytes: Vec<Counter>,
    /// Per-rank bytes taken off the wire.
    rx_bytes: Vec<Counter>,
}

/// Plain snapshot of [`FabricStats`] counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Active messages sent between distinct ranks (logical).
    pub am_count: u64,
    /// Bytes moved through active messages.
    pub am_bytes: u64,
    /// One-sided region fetches.
    pub rma_gets: u64,
    /// Bytes moved through RMA fetches.
    pub rma_bytes: u64,
    /// Messages delivered without leaving the rank.
    pub local_deliveries: u64,
    /// Serialization passes.
    pub serializations: u64,
    /// Deep data copies by backends.
    pub data_copies: u64,
    /// Broadcast sends avoided by deduplication.
    pub bcast_sends_saved: u64,
    /// Bytes not re-serialized thanks to broadcast deduplication.
    pub bcast_bytes_saved: u64,
    /// Physical retransmissions by the reliable layer.
    pub am_retries: u64,
    /// Packets dropped by fault injection.
    pub am_dropped_injected: u64,
    /// Packets duplicated by fault injection.
    pub am_dup_injected: u64,
    /// Packets held back by delay/reorder injection.
    pub am_delayed_injected: u64,
    /// Duplicates rejected by the dedup window.
    pub am_dedup_hits: u64,
    /// Logical packets abandoned (retry budget exhausted).
    pub am_retry_exhausted: u64,
    /// Post-shutdown sends absorbed as counted no-ops.
    pub post_shutdown_sends: u64,
    /// Late/duplicate RMA fetches served idempotently.
    pub rma_stale_gets: u64,
    /// Delivery-deadline misses.
    pub delivery_deadline_misses: u64,
}

impl FabricStats {
    fn new(reg: &Registry, n: usize) -> Self {
        let c = |name| reg.counter(MetricKey::global("comm", name));
        FabricStats {
            am_count: c("am_count"),
            am_bytes: c("am_bytes"),
            rma_gets: c("rma_gets"),
            rma_bytes: c("rma_bytes"),
            local_deliveries: c("local_deliveries"),
            serializations: c("serializations"),
            data_copies: c("data_copies"),
            bcast_sends_saved: c("bcast_sends_saved"),
            bcast_bytes_saved: c("bcast_bytes_saved"),
            am_retries: c("am_retries"),
            am_dropped_injected: c("am_dropped_injected"),
            am_dup_injected: c("am_dup_injected"),
            am_delayed_injected: c("am_delayed_injected"),
            am_dedup_hits: c("am_dedup_hits"),
            am_retry_exhausted: c("am_retry_exhausted"),
            post_shutdown_sends: c("post_shutdown_sends"),
            rma_stale_gets: c("rma_stale_gets"),
            delivery_deadline_misses: c("delivery_deadline_misses"),
            tx_bytes: (0..n)
                .map(|r| reg.counter(MetricKey::ranked(r, "comm", "tx_bytes")))
                .collect(),
            rx_bytes: (0..n)
                .map(|r| reg.counter(MetricKey::ranked(r, "comm", "rx_bytes")))
                .collect(),
        }
    }

    /// Capture the current counter values.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            am_count: self.am_count.get(),
            am_bytes: self.am_bytes.get(),
            rma_gets: self.rma_gets.get(),
            rma_bytes: self.rma_bytes.get(),
            local_deliveries: self.local_deliveries.get(),
            serializations: self.serializations.get(),
            data_copies: self.data_copies.get(),
            bcast_sends_saved: self.bcast_sends_saved.get(),
            bcast_bytes_saved: self.bcast_bytes_saved.get(),
            am_retries: self.am_retries.get(),
            am_dropped_injected: self.am_dropped_injected.get(),
            am_dup_injected: self.am_dup_injected.get(),
            am_delayed_injected: self.am_delayed_injected.get(),
            am_dedup_hits: self.am_dedup_hits.get(),
            am_retry_exhausted: self.am_retry_exhausted.get(),
            post_shutdown_sends: self.post_shutdown_sends.get(),
            rma_stale_gets: self.rma_stale_gets.get(),
            delivery_deadline_misses: self.delivery_deadline_misses.get(),
        }
    }
}

impl StatsSnapshot {
    /// Total bytes that crossed rank boundaries (eager + RMA).
    pub fn total_bytes(&self) -> u64 {
        self.am_bytes + self.rma_bytes
    }
}

/// A physical packet held back by delay/reorder injection.
struct Delayed {
    due: Instant,
    to: Rank,
    handler: u32,
    from: Rank,
    seq: u64,
    payload: Arc<Vec<u8>>,
}

/// State of the chaos + reliable-delivery layer (present only when a
/// [`FaultPlan`] is installed).
struct ChaosState {
    plan: FaultPlan,
    /// Sender-side link state, indexed `link_row(from) * n + to` where
    /// `link_row` maps out-of-fabric sentinel senders to row `n`.
    links: Vec<Mutex<LinkTx>>,
    /// Receive-side dedup windows: per destination rank, one window per
    /// incoming link row (`n + 1` rows).
    windows: Vec<Mutex<Vec<SeqWindow>>>,
    /// Packets held by delay/reorder injection.
    delayq: Mutex<Vec<Delayed>>,
    /// Sequenced packets received per rank (drives kill scripts).
    rx_packets: Vec<AtomicU64>,
    /// Ranks killed by script: all their traffic is silently dropped.
    killed: Vec<AtomicBool>,
    /// Progress-thread stop flag (set on fabric shutdown).
    stop: AtomicBool,
}

/// The in-process fabric connecting `n` ranks.
pub struct Fabric {
    n: usize,
    senders: Vec<Sender<Packet>>,
    receivers: Mutex<Vec<Option<Receiver<Packet>>>>,
    regions: Vec<Mutex<HashMap<RegionId, Region>>>,
    /// Recently released regions, kept to answer duplicate/late gets.
    released: Vec<Mutex<Vec<(RegionId, Arc<Vec<u8>>)>>>,
    next_region: AtomicU64,
    barrier: Barrier,
    telemetry: Arc<Registry>,
    stats: FabricStats,
    in_flight: AtomicUsize,
    /// Structured comm failures (drained into execution reports).
    errors: Mutex<Vec<CommError>>,
    chaos: Option<ChaosState>,
}

impl Fabric {
    /// Create a fabric with `n` ranks and a perfect network.
    pub fn new(n: usize) -> Arc<Fabric> {
        Self::with_faults(n, None)
    }

    /// Create a fabric with `n` ranks, optionally under a [`FaultPlan`].
    ///
    /// Installing a plan activates the reliable-delivery layer (sequence
    /// numbers, dedup windows, ack/retransmit) and spawns a progress
    /// thread that drives retransmission timers and delayed-packet
    /// release. The thread holds only a weak reference: it exits on
    /// [`shutdown_all`](Self::shutdown_all) or when the fabric is dropped.
    pub fn with_faults(n: usize, plan: Option<FaultPlan>) -> Arc<Fabric> {
        assert!(n > 0, "fabric needs at least one rank");
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(Some(rx));
        }
        let telemetry = Arc::new(Registry::new());
        let stats = FabricStats::new(&telemetry, n);
        let chaos = plan.map(|plan| ChaosState {
            plan,
            links: (0..(n + 1) * n)
                .map(|_| Mutex::new(LinkTx::default()))
                .collect(),
            windows: (0..n)
                .map(|_| Mutex::new(vec![SeqWindow::new(); n + 1]))
                .collect(),
            delayq: Mutex::new(Vec::new()),
            rx_packets: (0..n).map(|_| AtomicU64::new(0)).collect(),
            killed: (0..n).map(|_| AtomicBool::new(false)).collect(),
            stop: AtomicBool::new(false),
        });
        let fabric = Arc::new(Fabric {
            n,
            senders,
            receivers: Mutex::new(receivers),
            regions: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            released: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
            next_region: AtomicU64::new(1),
            barrier: Barrier::new(n),
            telemetry,
            stats,
            in_flight: AtomicUsize::new(0),
            errors: Mutex::new(Vec::new()),
            chaos,
        });
        if fabric.chaos.is_some() {
            let weak = Arc::downgrade(&fabric);
            std::thread::Builder::new()
                .name("fabric-reliable".into())
                .spawn(move || progress_loop(weak))
                .expect("failed to spawn fabric progress thread");
        }
        fabric
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.n
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.chaos.as_ref().map(|c| &c.plan)
    }

    /// Fabric-wide communication counters.
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// The metrics registry this fabric's counters live in. Snapshots taken
    /// here include everything [`FabricStats`] reports plus the per-rank
    /// `tx_bytes`/`rx_bytes` breakdown, keyed under subsystem `"comm"`.
    pub fn telemetry(&self) -> &Arc<Registry> {
        &self.telemetry
    }

    /// Record a structured communication failure.
    pub fn record_error(&self, e: CommError) {
        self.errors.lock().push(e);
    }

    /// Drain the accumulated communication failures.
    pub fn take_errors(&self) -> Vec<CommError> {
        std::mem::take(&mut *self.errors.lock())
    }

    /// Record a delivery-deadline miss (called by executors when a
    /// bounded wait gives up).
    pub fn count_deadline_miss(&self) {
        self.stats.delivery_deadline_misses.inc();
    }

    /// Take ownership of rank `rank`'s packet receiver. Panics if taken twice.
    pub fn take_receiver(&self, rank: Rank) -> Receiver<Packet> {
        self.receivers.lock()[rank]
            .take()
            .expect("receiver already taken for this rank")
    }

    /// Map a sending rank to its link-table row; out-of-fabric sentinel
    /// senders (external seeding uses `usize::MAX`) share row `n`.
    #[inline]
    fn link_row(&self, from: Rank) -> usize {
        if from < self.n {
            from
        } else {
            self.n
        }
    }

    #[inline]
    fn link_idx(&self, from: Rank, to: Rank) -> usize {
        self.link_row(from) * self.n + to
    }

    fn count_wire_am(&self, from: Rank, to: Rank, bytes: u64) {
        self.stats.am_count.inc();
        self.stats.am_bytes.add(bytes);
        // `from` may be an out-of-fabric sentinel (external seeding
        // uses usize::MAX); only real ranks have a tx counter.
        if let Some(tx) = self.stats.tx_bytes.get(from) {
            tx.add(bytes);
        }
        self.stats.rx_bytes[to].add(bytes);
        #[cfg(feature = "telemetry")]
        ttg_telemetry::instant(
            Some(to as u32),
            "comm",
            "am",
            &[("from", from as u64), ("bytes", bytes)],
        );
    }

    /// Send an active message from `from` to `to`. Counts wire traffic only
    /// when the ranks differ; rank-local AMs are loopback deliveries.
    ///
    /// Under a [`FaultPlan`] the message enters the reliable layer: it is
    /// sequenced, held for retransmission until acknowledged, and its
    /// physical copies are subject to injected faults. Loopback messages
    /// bypass the chaos layer (process-internal delivery cannot fail).
    ///
    /// A send to a rank whose channel is closed (post-shutdown teardown)
    /// is a counted no-op reported as [`SendError`] — never a panic.
    pub fn send_am(
        &self,
        from: Rank,
        to: Rank,
        handler: u32,
        payload: Vec<u8>,
    ) -> Result<(), SendError> {
        let bytes = payload.len() as u64;
        if from != to {
            if let Some(cs) = &self.chaos {
                self.count_wire_am(from, to, bytes);
                self.in_flight.fetch_add(1, Ordering::SeqCst);
                let payload = Arc::new(payload);
                let seq = {
                    let mut link = cs.links[self.link_idx(from, to)].lock();
                    let seq = link.assign_seq();
                    link.unacked.insert(
                        seq,
                        Unacked {
                            handler,
                            payload: Arc::clone(&payload),
                            attempts: 0,
                            next_retry: Instant::now() + cs.plan.retry.backoff(1),
                            delivered: false,
                        },
                    );
                    seq
                };
                self.transmit(cs, from, to, handler, seq, &payload, 0);
                return Ok(());
            }
        }
        match self.senders[to].send(Packet::Am {
            handler,
            from,
            seq: 0,
            payload,
        }) {
            Ok(()) => {
                if from != to {
                    self.count_wire_am(from, to, bytes);
                } else {
                    self.stats.local_deliveries.inc();
                }
                self.in_flight.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }
            Err(_) => {
                self.stats.post_shutdown_sends.inc();
                Err(SendError { from, to })
            }
        }
    }

    /// One physical transmission attempt of a sequenced packet, subject to
    /// the fault plan. `attempt` is 0 for the original send and the retry
    /// ordinal for retransmissions (distinct fault rolls per attempt).
    fn transmit(
        &self,
        cs: &ChaosState,
        from: Rank,
        to: Rank,
        handler: u32,
        seq: u64,
        payload: &Arc<Vec<u8>>,
        attempt: u32,
    ) {
        let link = self.link_idx(from, to) as u64;
        // A killed rank neither sends nor receives.
        if cs.killed[to].load(Ordering::SeqCst)
            || (from < self.n && cs.killed[from].load(Ordering::SeqCst))
        {
            self.stats.am_dropped_injected.inc();
            return;
        }
        let plan = &cs.plan;
        if plan.drop > 0.0 && plan.roll(salt::DROP, link, seq, attempt) < plan.drop {
            self.stats.am_dropped_injected.inc();
            return;
        }
        let copies = if plan.dup > 0.0 && plan.roll(salt::DUP, link, seq, attempt) < plan.dup {
            self.stats.am_dup_injected.inc();
            2
        } else {
            1
        };
        for copy in 0..copies {
            // Per-copy hold decision: a long delay or a short hold that
            // lets later packets overtake (reordering).
            let copy_salt = copy as u64 * 16;
            let hold = if plan.delay > 0.0
                && plan.roll(salt::DELAY + copy_salt, link, seq, attempt) < plan.delay
            {
                Some(plan.delay_for(link, seq, attempt))
            } else if plan.reorder > 0.0
                && plan.roll(salt::REORDER + copy_salt, link, seq, attempt) < plan.reorder
            {
                // Short hold: a fraction of the long-delay floor.
                Some(plan.delay_for(link, seq, attempt) / 4)
            } else {
                None
            };
            match hold {
                Some(d) => {
                    self.stats.am_delayed_injected.inc();
                    cs.delayq.lock().push(Delayed {
                        due: Instant::now() + d,
                        to,
                        handler,
                        from,
                        seq,
                        payload: Arc::clone(payload),
                    });
                }
                None => {
                    if self.senders[to]
                        .send(Packet::Am {
                            handler,
                            from,
                            seq,
                            payload: (**payload).clone(),
                        })
                        .is_err()
                    {
                        self.stats.post_shutdown_sends.inc();
                    }
                }
            }
        }
    }

    /// Receive-side classification of a sequenced packet: `true` means the
    /// packet is a fresh logical delivery and must be processed; `false`
    /// means it is a duplicate (or addressed to a dead rank) and must be
    /// discarded without counting as a logical receive.
    ///
    /// Fresh deliveries acknowledge the sender (subject to simulated ack
    /// loss, which only causes spurious retransmits — never double
    /// delivery).
    pub fn rx_accept(&self, to: Rank, from: Rank, seq: u64) -> bool {
        let Some(cs) = &self.chaos else { return true };
        if seq == 0 || from == to {
            return true;
        }
        let received = cs.rx_packets[to].fetch_add(1, Ordering::SeqCst) + 1;
        for k in &cs.plan.kills {
            if k.rank == to && received >= k.after_packets {
                cs.killed[to].store(true, Ordering::SeqCst);
            }
        }
        if cs.killed[to].load(Ordering::SeqCst) {
            return false;
        }
        let row = self.link_row(from);
        let fresh = cs.windows[to].lock()[row].accept(seq);
        if !fresh {
            self.stats.am_dedup_hits.inc();
        }
        // Acknowledge on every receipt (duplicates re-ack, covering a
        // previously lost ack). The receiver's acceptance itself is always
        // recorded on the sender entry; only the ack packet is lossy.
        let link = self.link_idx(from, to);
        let mut tx = cs.links[link].lock();
        if let Some(e) = tx.unacked.get_mut(&seq) {
            e.delivered = true;
            let ack_lost = cs.plan.drop > 0.0
                && cs.plan.roll(salt::ACK, link as u64, seq, e.attempts) < cs.plan.drop;
            if !ack_lost {
                tx.unacked.remove(&seq);
            }
        }
        fresh
    }

    /// One pass of the reliability progress engine: release due delayed
    /// packets, retransmit overdue unacked packets, abandon packets whose
    /// retry budget is spent. Called periodically by the progress thread;
    /// exposed for deterministic single-threaded tests.
    pub fn progress(&self) {
        let Some(cs) = &self.chaos else { return };
        let now = Instant::now();
        // Release held packets whose due time has passed.
        let due: Vec<Delayed> = {
            let mut q = cs.delayq.lock();
            let mut due = Vec::new();
            let mut i = 0;
            while i < q.len() {
                if q[i].due <= now {
                    due.push(q.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            due
        };
        for d in due {
            if cs.killed[d.to].load(Ordering::SeqCst) {
                self.stats.am_dropped_injected.inc();
                continue;
            }
            if self.senders[d.to]
                .send(Packet::Am {
                    handler: d.handler,
                    from: d.from,
                    seq: d.seq,
                    payload: (*d.payload).clone(),
                })
                .is_err()
            {
                self.stats.post_shutdown_sends.inc();
            }
        }
        // Retransmit / abandon overdue unacked packets.
        for (li, l) in cs.links.iter().enumerate() {
            let from_row = li / self.n;
            let from: Rank = if from_row == self.n {
                usize::MAX
            } else {
                from_row
            };
            let to: Rank = li % self.n;
            let mut retransmit: Vec<(u64, u32, Arc<Vec<u8>>, u32)> = Vec::new();
            let mut exhausted: Vec<(u64, u32, bool)> = Vec::new();
            {
                let mut link = l.lock();
                if link.unacked.is_empty() {
                    continue;
                }
                let mut give_up: Vec<u64> = Vec::new();
                for (&seq, e) in link.unacked.iter_mut() {
                    if now < e.next_retry {
                        continue;
                    }
                    if e.attempts >= cs.plan.retry.max_retries {
                        give_up.push(seq);
                        continue;
                    }
                    e.attempts += 1;
                    e.next_retry = now + cs.plan.retry.backoff(e.attempts + 1);
                    retransmit.push((seq, e.handler, Arc::clone(&e.payload), e.attempts));
                }
                for seq in give_up {
                    let e = link.unacked.remove(&seq).unwrap();
                    exhausted.push((seq, e.handler, e.delivered));
                }
            }
            for (seq, handler, payload, attempt) in retransmit {
                self.stats.am_retries.inc();
                self.transmit(cs, from, to, handler, seq, &payload, attempt);
            }
            for (seq, handler, delivered) in exhausted {
                // Claim the sequence number in the receiver's window: if
                // the claim succeeds the packet was never (and will never
                // be) logically delivered — report the loss and retire the
                // in-flight slot. If it fails, the receiver accepted a
                // copy at some point (the ack was lost); nothing was lost.
                let row = self.link_row(from);
                let claimed = !delivered && cs.windows[to].lock()[row].accept(seq);
                if claimed {
                    self.in_flight.fetch_sub(1, Ordering::SeqCst);
                    self.stats.am_retry_exhausted.inc();
                    self.record_error(CommError {
                        kind: CommErrorKind::RetryBudgetExhausted,
                        from: (from != usize::MAX).then_some(from),
                        to: Some(to),
                        handler: Some(handler),
                        seq: Some(seq),
                        detail: format!(
                            "abandoned after {} retransmissions",
                            cs.plan.retry.max_retries
                        ),
                    });
                }
            }
        }
    }

    /// Mark a previously sent packet as fully processed (used by the
    /// termination detector to know when the fabric has drained).
    pub fn packet_processed(&self) {
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }

    /// Number of packets sent but not yet fully processed.
    pub fn packets_in_flight(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Deliver a shutdown packet to every rank and stop the reliability
    /// progress thread.
    pub fn shutdown_all(&self) {
        if let Some(cs) = &self.chaos {
            cs.stop.store(true, Ordering::SeqCst);
        }
        for tx in &self.senders {
            let _ = tx.send(Packet::Shutdown);
        }
    }

    /// Register `data` as an RMA-readable region owned by `owner`.
    ///
    /// The region is released (and `on_release` runs) after `expected_gets`
    /// fetches. `expected_gets == 0` releases immediately.
    pub fn register_region(
        &self,
        owner: Rank,
        data: Arc<Vec<u8>>,
        expected_gets: usize,
        on_release: Option<Box<dyn FnOnce() + Send>>,
    ) -> RegionId {
        if expected_gets == 0 {
            if let Some(f) = on_release {
                f();
            }
            return 0;
        }
        let id = self.next_region.fetch_add(1, Ordering::Relaxed);
        self.regions[owner].lock().insert(
            id,
            Region {
                data,
                remaining: expected_gets,
                on_release,
            },
        );
        id
    }

    /// One-sided fetch of a region owned by `owner`.
    ///
    /// The calling rank obtains a zero-copy handle to the region bytes —
    /// emulating an RDMA read that does not involve the owner's CPU. The
    /// fetch that satisfies the region's expected count triggers release.
    ///
    /// A duplicate or late fetch of an already-released region is answered
    /// idempotently from a bounded cache of recently released regions; a
    /// fetch of a region the owner never held (or that has been evicted)
    /// returns [`RmaError::UnknownRegion`] — never a panic.
    pub fn rma_get(
        &self,
        caller: Rank,
        owner: Rank,
        id: RegionId,
    ) -> Result<Arc<Vec<u8>>, RmaError> {
        let looked_up = {
            let mut table = self.regions[owner].lock();
            match table.get_mut(&id) {
                None => None,
                Some(region) => {
                    let data = Arc::clone(&region.data);
                    region.remaining -= 1;
                    if region.remaining == 0 {
                        let region = table.remove(&id).unwrap();
                        Some((data, region.on_release, true))
                    } else {
                        Some((data, None, false))
                    }
                }
            }
        };
        let (data, release) = match looked_up {
            Some((data, release, consumed)) => {
                if consumed {
                    // Fully consumed: remember the bytes so duplicate or
                    // late gets racing this removal stay answerable.
                    let mut cache = self.released[owner].lock();
                    if cache.len() >= RELEASED_CACHE {
                        cache.remove(0);
                    }
                    cache.push((id, Arc::clone(&data)));
                }
                (data, release)
            }
            None => {
                // Region gone from the live table: duplicate/late get.
                let cached = self.released[owner]
                    .lock()
                    .iter()
                    .find(|(rid, _)| *rid == id)
                    .map(|(_, d)| Arc::clone(d));
                match cached {
                    Some(d) => {
                        self.stats.rma_stale_gets.inc();
                        // Served idempotently; no release side effects and
                        // no double-counted wire traffic.
                        return Ok(d);
                    }
                    None => {
                        let err = RmaError::UnknownRegion { caller, owner, id };
                        self.record_error(CommError::from(err.clone()));
                        return Err(err);
                    }
                }
            }
        };
        if caller != owner {
            let bytes = data.len() as u64;
            self.stats.rma_gets.inc();
            self.stats.rma_bytes.add(bytes);
            self.stats.tx_bytes[owner].add(bytes);
            self.stats.rx_bytes[caller].add(bytes);
            #[cfg(feature = "telemetry")]
            ttg_telemetry::instant(
                Some(caller as u32),
                "comm",
                "rma_get",
                &[("owner", owner as u64), ("bytes", bytes)],
            );
        }
        if let Some(f) = release {
            f();
        }
        Ok(data)
    }

    /// Number of live (unreleased) regions owned by `rank`.
    pub fn live_regions(&self, rank: Rank) -> usize {
        self.regions[rank].lock().len()
    }

    /// Block until all ranks reach the barrier (used by BSP comparators).
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Record that a serialization pass happened (for the copy-count
    /// ablation).
    pub fn count_serialization(&self) {
        self.stats.serializations.inc();
    }

    /// Record a deep data copy performed by a backend.
    pub fn count_data_copy(&self) {
        self.stats.data_copies.inc();
    }

    /// Record what the optimized broadcast saved versus naive per-key
    /// sends: `sends_saved` skipped AMs and `bytes_saved` re-serialized
    /// payload bytes that never had to be produced.
    pub fn count_broadcast_dedup(&self, sends_saved: u64, bytes_saved: u64) {
        self.stats.bcast_sends_saved.add(sends_saved);
        self.stats.bcast_bytes_saved.add(bytes_saved);
    }
}

/// Body of the reliability progress thread: ticks the retransmission and
/// delayed-release engine until the fabric shuts down or is dropped.
fn progress_loop(fabric: Weak<Fabric>) {
    loop {
        let Some(f) = fabric.upgrade() else { return };
        if let Some(cs) = &f.chaos {
            if cs.stop.load(Ordering::SeqCst) {
                return;
            }
        }
        f.progress();
        drop(f);
        std::thread::sleep(PROGRESS_TICK);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn am_roundtrip_between_ranks() {
        let fabric = Fabric::new(2);
        let rx1 = fabric.take_receiver(1);
        fabric.send_am(0, 1, 7, vec![1, 2, 3]).unwrap();
        match rx1.recv().unwrap() {
            Packet::Am {
                handler,
                from,
                seq,
                payload,
            } => {
                assert_eq!(handler, 7);
                assert_eq!(from, 0);
                assert_eq!(seq, 0);
                assert_eq!(payload, vec![1, 2, 3]);
            }
            other => panic!("unexpected packet {:?}", other),
        }
        let s = fabric.stats().snapshot();
        assert_eq!(s.am_count, 1);
        assert_eq!(s.am_bytes, 3);
        fabric.packet_processed();
        assert_eq!(fabric.packets_in_flight(), 0);
    }

    #[test]
    fn local_am_not_counted_as_wire_traffic() {
        let fabric = Fabric::new(1);
        let rx = fabric.take_receiver(0);
        fabric.send_am(0, 0, 1, vec![0; 64]).unwrap();
        let _ = rx.recv().unwrap();
        let s = fabric.stats().snapshot();
        assert_eq!(s.am_count, 0);
        assert_eq!(s.am_bytes, 0);
        assert_eq!(s.local_deliveries, 1);
    }

    #[test]
    fn send_to_closed_rank_is_counted_error_not_panic() {
        let fabric = Fabric::new(2);
        {
            let _rx = fabric.take_receiver(1);
            // Receiver dropped here: rank 1's channel closes.
        }
        let err = fabric
            .send_am(0, 1, 7, vec![1, 2, 3])
            .expect_err("closed channel must error");
        assert_eq!(err, SendError { from: 0, to: 1 });
        let s = fabric.stats().snapshot();
        assert_eq!(s.post_shutdown_sends, 1);
        // No phantom in-flight packet and no wire accounting for the no-op.
        assert_eq!(fabric.packets_in_flight(), 0);
        assert_eq!(s.am_count, 0);
    }

    #[test]
    fn rma_region_lifecycle() {
        let fabric = Fabric::new(3);
        let released = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&released);
        let data = Arc::new(vec![9u8; 128]);
        let id = fabric.register_region(
            0,
            data,
            2,
            Some(Box::new(move || flag.store(true, Ordering::SeqCst))),
        );
        assert_eq!(fabric.live_regions(0), 1);

        let d1 = fabric.rma_get(1, 0, id).unwrap();
        assert_eq!(d1.len(), 128);
        assert!(!released.load(Ordering::SeqCst));
        assert_eq!(fabric.live_regions(0), 1);

        let d2 = fabric.rma_get(2, 0, id).unwrap();
        assert_eq!(d2.len(), 128);
        assert!(released.load(Ordering::SeqCst));
        assert_eq!(fabric.live_regions(0), 0);

        let s = fabric.stats().snapshot();
        assert_eq!(s.rma_gets, 2);
        assert_eq!(s.rma_bytes, 256);
    }

    #[test]
    fn duplicate_get_after_release_is_idempotent() {
        let fabric = Fabric::new(2);
        let id = fabric.register_region(0, Arc::new(vec![5u8; 16]), 1, None);
        let first = fabric.rma_get(1, 0, id).unwrap();
        assert_eq!(fabric.live_regions(0), 0);
        // A duplicated/late get racing the release: answered from the
        // idempotency cache, no panic, no double release.
        let dup = fabric.rma_get(1, 0, id).unwrap();
        assert_eq!(*dup, *first);
        let s = fabric.stats().snapshot();
        assert_eq!(s.rma_stale_gets, 1);
        // Wire traffic counted once only (the idempotent answer is free).
        assert_eq!(s.rma_gets, 1);
    }

    #[test]
    fn unknown_region_is_structured_error_not_panic() {
        let fabric = Fabric::new(2);
        let err = fabric
            .rma_get(1, 0, 999)
            .expect_err("unknown region must error");
        assert_eq!(
            err,
            RmaError::UnknownRegion {
                caller: 1,
                owner: 0,
                id: 999
            }
        );
        let errors = fabric.take_errors();
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].kind, CommErrorKind::UnknownRegion);
        assert_eq!(errors[0].code(), "TTG044");
    }

    #[test]
    fn zero_consumer_region_releases_immediately() {
        let fabric = Fabric::new(1);
        let released = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&released);
        fabric.register_region(
            0,
            Arc::new(vec![1]),
            0,
            Some(Box::new(move || flag.store(true, Ordering::SeqCst))),
        );
        assert!(released.load(Ordering::SeqCst));
        assert_eq!(fabric.live_regions(0), 0);
    }

    #[test]
    fn barrier_synchronizes_ranks() {
        let fabric = Fabric::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let f = Arc::clone(&fabric);
            let c = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                c.fetch_add(1, Ordering::SeqCst);
                f.barrier();
                // After the barrier every rank must observe all increments.
                assert_eq!(c.load(Ordering::SeqCst), 4);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn stats_and_registry_share_cells() {
        let fabric = Fabric::new(2);
        let _rx = fabric.take_receiver(1);
        fabric.send_am(0, 1, 3, vec![7u8; 40]).unwrap();
        fabric.count_serialization();
        fabric.count_broadcast_dedup(5, 320);

        let legacy = fabric.stats().snapshot();
        let reg = fabric.telemetry().snapshot();
        assert_eq!(
            reg.counter(&MetricKey::global("comm", "am_count")),
            legacy.am_count
        );
        assert_eq!(reg.counter(&MetricKey::global("comm", "am_bytes")), 40);
        assert_eq!(
            reg.counter(&MetricKey::global("comm", "serializations")),
            legacy.serializations
        );
        assert_eq!(
            reg.counter(&MetricKey::global("comm", "bcast_sends_saved")),
            5
        );
        assert_eq!(legacy.bcast_bytes_saved, 320);
        assert_eq!(reg.counter(&MetricKey::ranked(0, "comm", "tx_bytes")), 40);
        assert_eq!(reg.counter(&MetricKey::ranked(1, "comm", "rx_bytes")), 40);
        assert_eq!(reg.counter(&MetricKey::ranked(1, "comm", "tx_bytes")), 0);
    }

    #[test]
    fn shutdown_reaches_every_rank() {
        let fabric = Fabric::new(2);
        let rx0 = fabric.take_receiver(0);
        let rx1 = fabric.take_receiver(1);
        fabric.shutdown_all();
        assert!(matches!(rx0.recv().unwrap(), Packet::Shutdown));
        assert!(matches!(rx1.recv().unwrap(), Packet::Shutdown));
    }

    // ---- reliable-delivery layer -------------------------------------

    /// Drain one packet, classify through `rx_accept`, return whether it
    /// was fresh.
    fn pump(fabric: &Fabric, rx: &Receiver<Packet>, rank: Rank) -> Option<bool> {
        match rx.try_recv().ok()? {
            Packet::Am { from, seq, .. } => {
                let fresh = fabric.rx_accept(rank, from, seq);
                if fresh {
                    fabric.packet_processed();
                }
                Some(fresh)
            }
            Packet::Shutdown => None,
        }
    }

    #[test]
    fn reliable_layer_sequences_and_delivers_exactly_once() {
        let plan = FaultPlan::seeded(1);
        let fabric = Fabric::with_faults(2, Some(plan));
        let rx1 = fabric.take_receiver(1);
        for _ in 0..10 {
            fabric.send_am(0, 1, 7, vec![1]).unwrap();
        }
        let mut fresh = 0;
        while let Some(f) = pump(&fabric, &rx1, 1) {
            if f {
                fresh += 1;
            }
        }
        assert_eq!(fresh, 10);
        assert_eq!(fabric.packets_in_flight(), 0);
        assert_eq!(fabric.stats().snapshot().am_dedup_hits, 0);
    }

    #[test]
    fn injected_duplicates_are_deduped() {
        let plan = FaultPlan::seeded(3).with_dup(1.0);
        let fabric = Fabric::with_faults(2, Some(plan));
        let rx1 = fabric.take_receiver(1);
        for _ in 0..5 {
            fabric.send_am(0, 1, 7, vec![2]).unwrap();
        }
        let mut fresh = 0;
        let mut dups = 0;
        while let Some(f) = pump(&fabric, &rx1, 1) {
            if f {
                fresh += 1;
            } else {
                dups += 1;
            }
        }
        assert_eq!(fresh, 5, "logical delivery must stay exactly-once");
        assert_eq!(dups, 5, "every duplicate must be rejected");
        let s = fabric.stats().snapshot();
        assert_eq!(s.am_dup_injected, 5);
        assert_eq!(s.am_dedup_hits, 5);
        assert_eq!(s.am_count, 5, "logical AM count unaffected by duplication");
        assert_eq!(fabric.packets_in_flight(), 0);
    }

    #[test]
    fn dropped_packets_are_retransmitted() {
        // Drop every original transmission (attempt 0) — the deterministic
        // rolls differ per attempt, so retransmits eventually pass. Use a
        // plan with drop=0.5 and enough budget.
        let mut plan = FaultPlan::seeded(11).with_drop(0.5);
        plan.retry.base = Duration::from_micros(50);
        plan.retry.cap = Duration::from_micros(400);
        let fabric = Fabric::with_faults(2, Some(plan));
        let rx1 = fabric.take_receiver(1);
        let n = 40;
        for _ in 0..n {
            fabric.send_am(0, 1, 7, vec![3]).unwrap();
        }
        let mut fresh = 0;
        let deadline = Instant::now() + Duration::from_secs(10);
        while fresh < n && Instant::now() < deadline {
            // The progress thread is running, but tick explicitly too so
            // the test does not depend on scheduler timing.
            fabric.progress();
            while let Some(f) = pump(&fabric, &rx1, 1) {
                if f {
                    fresh += 1;
                }
            }
            std::thread::sleep(Duration::from_micros(100));
        }
        assert_eq!(fresh, n, "all logical packets must eventually deliver");
        assert_eq!(fabric.packets_in_flight(), 0);
        let s = fabric.stats().snapshot();
        assert!(s.am_retries > 0, "drops must force retransmissions");
        assert!(s.am_dropped_injected > 0);
    }

    #[test]
    fn dead_link_exhausts_budget_and_reports() {
        // Rank 1 dies before anything arrives: every packet to it is
        // dropped, the budget runs out, and the loss is reported.
        let mut plan = FaultPlan::seeded(5).with_kill(1, 0);
        plan.retry = crate::fault::RetryPolicy {
            base: Duration::from_micros(20),
            cap: Duration::from_micros(100),
            max_retries: 3,
        };
        let fabric = Fabric::with_faults(2, Some(plan));
        let _rx1 = fabric.take_receiver(1);
        fabric.send_am(0, 1, 9, vec![4, 4]).unwrap();
        assert_eq!(fabric.packets_in_flight(), 1);
        let deadline = Instant::now() + Duration::from_secs(5);
        while fabric.packets_in_flight() > 0 && Instant::now() < deadline {
            fabric.progress();
            std::thread::sleep(Duration::from_micros(50));
        }
        assert_eq!(
            fabric.packets_in_flight(),
            0,
            "abandoned packet must retire its in-flight slot"
        );
        let errors = fabric.take_errors();
        assert_eq!(errors.len(), 1, "exactly one loss report");
        assert_eq!(errors[0].kind, CommErrorKind::RetryBudgetExhausted);
        assert_eq!(errors[0].code(), "TTG040");
        assert_eq!(errors[0].from, Some(0));
        assert_eq!(errors[0].to, Some(1));
        let s = fabric.stats().snapshot();
        assert_eq!(s.am_retry_exhausted, 1);
    }

    #[test]
    fn delayed_packets_are_released_by_progress() {
        let mut plan = FaultPlan::seeded(21).with_delay(1.0);
        plan.delay_us = (100, 200);
        let fabric = Fabric::with_faults(2, Some(plan));
        let rx1 = fabric.take_receiver(1);
        fabric.send_am(0, 1, 7, vec![5]).unwrap();
        // Held: nothing arrives immediately.
        assert!(rx1.try_recv().is_err());
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut fresh = 0;
        while fresh == 0 && Instant::now() < deadline {
            fabric.progress();
            if let Some(true) = pump(&fabric, &rx1, 1) {
                fresh += 1;
            }
            std::thread::sleep(Duration::from_micros(50));
        }
        assert_eq!(fresh, 1);
        assert!(fabric.stats().snapshot().am_delayed_injected >= 1);
    }

    #[test]
    fn loopback_bypasses_chaos() {
        let plan = FaultPlan::seeded(2).with_drop(1.0);
        let fabric = Fabric::with_faults(2, Some(plan));
        let rx0 = fabric.take_receiver(0);
        fabric.send_am(0, 0, 1, vec![9]).unwrap();
        // Local delivery is immediate even under 100% drop.
        assert!(matches!(rx0.recv().unwrap(), Packet::Am { seq: 0, .. }));
        assert_eq!(fabric.stats().snapshot().local_deliveries, 1);
    }
}
