//! # ttg-comm — serialization and the simulated distributed fabric
//!
//! This crate provides the communication substrate of the TTG reproduction:
//!
//! * [`buf`] — append-only/read-forward binary buffers (the paper's custom
//!   high-performance in-memory archives);
//! * [`wire`] — the [`Wire`] trait with three transfer protocols mirroring
//!   the paper (§II-C): trivial (`memcpy`), generic archive
//!   (Boost.Serialization analog), and split-metadata (two-stage RMA);
//! * [`pool`] — a bounded free-list that recycles hot-path wire buffers
//!   instead of reallocating one per message;
//! * [`fabric`] — an in-process fabric of logical ranks with active
//!   messages, emulated one-sided RMA, barriers, and traffic counters;
//! * [`fault`] — seeded, deterministic fault injection ([`FaultPlan`]):
//!   per-link drop/duplicate/reorder/delay probabilities and scripted rank
//!   deaths, parseable from a `--faults seed=K,drop=p` CLI spec;
//! * [`reliable`] — the reliable-delivery protocol run under a fault plan:
//!   per-link sequence numbers, receive-side dedup windows, ack +
//!   exponential-backoff retransmit with a bounded retry budget.
//!
//! The fabric replaces MPI + InfiniBand from the paper's testbeds; see
//! `DESIGN.md` for the substitution argument and §8 for the fault model.

#![warn(missing_docs)]

pub mod buf;
pub mod fabric;
pub mod fault;
pub mod lockdoc;
pub mod recover;
pub mod reliable;
pub mod wire;

// The wire-buffer pool moved down into `ttg-transport` so the socket mesh
// can encode frames through it without a dependency cycle; re-exported
// here unchanged for the existing `ttg_comm::pool` users.
pub use ttg_transport::pool;

pub use buf::{ReadBuf, WireError, WriteBuf};
pub use fabric::{
    CommError, CommErrorKind, Fabric, FabricStats, Packet, Rank, RegionId, RmaError, SendError,
    StatsSnapshot,
};
pub use fault::{FaultPlan, KillScript, RetryPolicy};
pub use pool::{pool_stats, PoolStats};
pub use recover::{FileSnapshotSink, MemorySnapshotSink, SharedSnapshotSink, SnapshotSink};
pub use reliable::SeqWindow;
// Link-layer selection re-exported so executors and apps need no direct
// ttg-transport dependency (DESIGN §9).
pub use ttg_transport::{RemoteHandle, TransportError, TransportKind, TransportSpec};
pub use wire::{bytes_to_f64s, f64s_to_bytes, from_bytes, to_bytes, Wire, WireKind};
