//! The `Wire` serialization trait and the three transfer protocols of the
//! paper (Section II-C):
//!
//! * **Trivial** — the type is plain-old-data; it is encoded with a straight
//!   field copy (the `memcpy` path of the paper).
//! * **Archive** — generic field-by-field serialization into an in-memory
//!   buffer. This is the analog of the paper's custom high-performance
//!   Boost.Serialization archives: no type versioning, no pointer tracking.
//! * **SplitMd** — the *split-metadata* two-stage protocol: a small metadata
//!   record travels eagerly, while the object's contiguous payload is fetched
//!   by the receiver via (emulated) RMA and attached to a freshly allocated
//!   object. Intrusive: types opt in by implementing the `split_*` hooks.
//!
//! The protocol actually used for a transfer is chosen per-type by
//! [`Wire::KIND`] and per-backend by whether the backend supports splitmd
//! (the paper's preference order: splitmd, trivial, archive).

use crate::buf::{ReadBuf, WireError, WriteBuf};

/// Which transfer protocol a type prefers (paper §II-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireKind {
    /// Plain-old-data fast path (`memcpy`-style encoding).
    Trivial,
    /// Generic archive serialization (Boost.Serialization analog).
    Archive,
    /// Two-stage split-metadata protocol with RMA payload transfer.
    SplitMd,
}

/// Serializable message type: every task ID and every data value flowing
/// through a TTG edge must implement `Wire`.
///
/// The default implementations of the `split_*` hooks degrade the SplitMd
/// protocol to whole-object archive transfer, so only types that declare
/// `KIND = WireKind::SplitMd` need to override them.
pub trait Wire: Sized + Send + 'static {
    /// Preferred transfer protocol for this type.
    const KIND: WireKind = WireKind::Archive;

    /// Serialize `self` into `b`.
    fn encode(&self, b: &mut WriteBuf);

    /// Deserialize a value from `r`.
    fn decode(r: &mut ReadBuf<'_>) -> Result<Self, WireError>;

    /// Serialized size in bytes. The default performs a throw-away encode;
    /// hot types should override with an O(1) computation.
    fn wire_size(&self) -> usize {
        let mut b = WriteBuf::new();
        self.encode(&mut b);
        b.len()
    }

    /// SplitMd stage 1 (sender): encode only the metadata needed to allocate
    /// the object on the receiving side.
    fn split_encode_md(&self, b: &mut WriteBuf) {
        self.encode(b);
    }

    /// SplitMd stage 1 (receiver): allocate an object from metadata. The
    /// payload is not yet valid — it is attached in stage 2.
    fn split_decode_md(r: &mut ReadBuf<'_>) -> Result<Self, WireError> {
        Self::decode(r)
    }

    /// SplitMd stage 2 (sender): the contiguous payload to expose via RMA.
    /// `None` means the type has no split payload and the metadata carried
    /// everything.
    fn split_payload(&self) -> Option<Vec<u8>> {
        None
    }

    /// SplitMd stage 2 (receiver): attach the RMA-fetched payload bytes to a
    /// metadata-allocated object.
    fn split_attach(&mut self, _bytes: &[u8]) {}
}

macro_rules! wire_prim {
    ($ty:ty, $put:ident, $get:ident, $size:expr) => {
        impl Wire for $ty {
            const KIND: WireKind = WireKind::Trivial;
            #[inline]
            fn encode(&self, b: &mut WriteBuf) {
                b.$put(*self);
            }
            #[inline]
            fn decode(r: &mut ReadBuf<'_>) -> Result<Self, WireError> {
                r.$get()
            }
            #[inline]
            fn wire_size(&self) -> usize {
                $size
            }
        }
    };
}

wire_prim!(u8, put_u8, get_u8, 1);
wire_prim!(u16, put_u16, get_u16, 2);
wire_prim!(u32, put_u32, get_u32, 4);
wire_prim!(u64, put_u64, get_u64, 8);
wire_prim!(i8, put_i8, get_i8, 1);
wire_prim!(i16, put_i16, get_i16, 2);
wire_prim!(i32, put_i32, get_i32, 4);
wire_prim!(i64, put_i64, get_i64, 8);
wire_prim!(f32, put_f32, get_f32, 4);
wire_prim!(f64, put_f64, get_f64, 8);

impl Wire for usize {
    const KIND: WireKind = WireKind::Trivial;
    #[inline]
    fn encode(&self, b: &mut WriteBuf) {
        b.put_usize(*self);
    }
    #[inline]
    fn decode(r: &mut ReadBuf<'_>) -> Result<Self, WireError> {
        r.get_usize()
    }
    #[inline]
    fn wire_size(&self) -> usize {
        8
    }
}

impl Wire for bool {
    const KIND: WireKind = WireKind::Trivial;
    #[inline]
    fn encode(&self, b: &mut WriteBuf) {
        b.put_u8(*self as u8);
    }
    #[inline]
    fn decode(r: &mut ReadBuf<'_>) -> Result<Self, WireError> {
        Ok(r.get_u8()? != 0)
    }
    #[inline]
    fn wire_size(&self) -> usize {
        1
    }
}

impl Wire for () {
    const KIND: WireKind = WireKind::Trivial;
    #[inline]
    fn encode(&self, _b: &mut WriteBuf) {}
    #[inline]
    fn decode(_r: &mut ReadBuf<'_>) -> Result<Self, WireError> {
        Ok(())
    }
    #[inline]
    fn wire_size(&self) -> usize {
        0
    }
}

impl Wire for String {
    #[inline]
    fn encode(&self, b: &mut WriteBuf) {
        b.put_len_bytes(self.as_bytes());
    }
    #[inline]
    fn decode(r: &mut ReadBuf<'_>) -> Result<Self, WireError> {
        let bytes = r.get_len_bytes()?;
        String::from_utf8(bytes.to_vec()).map_err(|e| WireError::new(e.to_string()))
    }
    #[inline]
    fn wire_size(&self) -> usize {
        8 + self.len()
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, b: &mut WriteBuf) {
        b.put_usize(self.len());
        for x in self {
            x.encode(b);
        }
    }
    fn decode(r: &mut ReadBuf<'_>) -> Result<Self, WireError> {
        let n = r.get_usize()?;
        // Guard against a corrupt length causing a huge allocation.
        if n > r.remaining() && std::mem::size_of::<T>() > 0 {
            return Err(WireError::new(format!("vec length {} exceeds buffer", n)));
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, b: &mut WriteBuf) {
        match self {
            None => b.put_u8(0),
            Some(x) => {
                b.put_u8(1);
                x.encode(b);
            }
        }
    }
    fn decode(r: &mut ReadBuf<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            t => Err(WireError::new(format!("bad Option tag {}", t))),
        }
    }
}

impl<T: Wire + Copy + Default, const N: usize> Wire for [T; N] {
    fn encode(&self, b: &mut WriteBuf) {
        for x in self {
            x.encode(b);
        }
    }
    fn decode(r: &mut ReadBuf<'_>) -> Result<Self, WireError> {
        let mut out = [T::default(); N];
        for slot in out.iter_mut() {
            *slot = T::decode(r)?;
        }
        Ok(out)
    }
}

macro_rules! wire_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Wire),+> Wire for ($($name,)+) {
            fn encode(&self, b: &mut WriteBuf) {
                $(self.$idx.encode(b);)+
            }
            fn decode(r: &mut ReadBuf<'_>) -> Result<Self, WireError> {
                Ok(($($name::decode(r)?,)+))
            }
        }
    };
}

wire_tuple!(A: 0);
wire_tuple!(A: 0, B: 1);
wire_tuple!(A: 0, B: 1, C: 2);
wire_tuple!(A: 0, B: 1, C: 2, D: 3);
wire_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
wire_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Implement [`Wire`] for a plain struct by listing its fields.
///
/// ```
/// use ttg_comm::wire_struct;
/// #[derive(Debug, Clone, PartialEq)]
/// struct P { x: i32, y: f64 }
/// wire_struct!(P { x, y });
/// ```
#[macro_export]
macro_rules! wire_struct {
    ($ty:ident { $($field:ident),* $(,)? }) => {
        impl $crate::Wire for $ty {
            fn encode(&self, b: &mut $crate::WriteBuf) {
                $( $crate::Wire::encode(&self.$field, b); )*
            }
            fn decode(r: &mut $crate::ReadBuf<'_>) -> Result<Self, $crate::WireError> {
                Ok($ty {
                    $( $field: $crate::Wire::decode(r)?, )*
                })
            }
        }
    };
}

/// Encode a `Vec<f64>` payload as raw little-endian bytes.
///
/// Helper for SplitMd types whose contiguous segment is an `f64` buffer
/// (e.g. matrix tiles, spectral coefficients).
pub fn f64s_to_bytes(data: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * 8);
    for x in data {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

/// Decode raw little-endian bytes into an `f64` buffer (inverse of
/// [`f64s_to_bytes`]).
pub fn bytes_to_f64s(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|c| {
            let mut a = [0u8; 8];
            a.copy_from_slice(c);
            f64::from_le_bytes(a)
        })
        .collect()
}

/// Serialize a value to a standalone byte vector (archive protocol).
pub fn to_bytes<T: Wire>(v: &T) -> Vec<u8> {
    let mut b = WriteBuf::with_capacity(v.wire_size());
    v.encode(&mut b);
    b.into_vec()
}

/// Deserialize a value from a byte slice (archive protocol).
pub fn from_bytes<T: Wire>(bytes: &[u8]) -> Result<T, WireError> {
    let mut r = ReadBuf::new(bytes);
    T::decode(&mut r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Point {
        x: i32,
        y: f64,
        tag: String,
    }
    wire_struct!(Point { x, y, tag });

    #[test]
    fn struct_roundtrip() {
        let p = Point {
            x: -3,
            y: 2.5,
            tag: "hello".into(),
        };
        let bytes = to_bytes(&p);
        let q: Point = from_bytes(&bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn nested_collections_roundtrip() {
        let v: Vec<Option<(u32, String)>> =
            vec![Some((1, "a".into())), None, Some((9, String::new()))];
        let bytes = to_bytes(&v);
        let w: Vec<Option<(u32, String)>> = from_bytes(&bytes).unwrap();
        assert_eq!(v, w);
    }

    #[test]
    fn arrays_and_tuples() {
        let a: [i64; 4] = [1, -2, 3, -4];
        let t = (a, 7u8, 1.5f32);
        let bytes = to_bytes(&t);
        let u: ([i64; 4], u8, f32) = from_bytes(&bytes).unwrap();
        assert_eq!(t, u);
    }

    #[test]
    fn corrupt_vec_length_rejected() {
        let mut b = WriteBuf::new();
        b.put_usize(usize::MAX / 2);
        let bytes = b.into_vec();
        let r: Result<Vec<u64>, _> = from_bytes(&bytes);
        assert!(r.is_err());
    }

    #[test]
    fn f64_bytes_roundtrip() {
        let xs = vec![0.0, -1.5, f64::MAX, f64::MIN_POSITIVE, 42.0];
        let b = f64s_to_bytes(&xs);
        assert_eq!(b.len(), xs.len() * 8);
        assert_eq!(bytes_to_f64s(&b), xs);
    }

    #[test]
    fn kinds() {
        assert_eq!(<u64 as Wire>::KIND, WireKind::Trivial);
        assert_eq!(<String as Wire>::KIND, WireKind::Archive);
    }

    #[test]
    fn wire_size_matches_encoding() {
        let p = Point {
            x: 1,
            y: 0.0,
            tag: "abcd".into(),
        };
        assert_eq!(p.wire_size(), to_bytes(&p).len());
        assert_eq!(7u64.wire_size(), 8);
        assert_eq!(().wire_size(), 0);
    }
}
