//! The `Wire` serialization trait and the three transfer protocols of the
//! paper (Section II-C):
//!
//! * **Trivial** — the type is plain-old-data; it is encoded with a straight
//!   field copy (the `memcpy` path of the paper).
//! * **Archive** — generic field-by-field serialization into an in-memory
//!   buffer. This is the analog of the paper's custom high-performance
//!   Boost.Serialization archives: no type versioning, no pointer tracking.
//! * **SplitMd** — the *split-metadata* two-stage protocol: a small metadata
//!   record travels eagerly, while the object's contiguous payload is fetched
//!   by the receiver via (emulated) RMA and attached to a freshly allocated
//!   object. Intrusive: types opt in by implementing the `split_*` hooks.
//!
//! The protocol actually used for a transfer is chosen per-type by
//! [`Wire::KIND`] and per-backend by whether the backend supports splitmd
//! (the paper's preference order: splitmd, trivial, archive).

use crate::buf::{ReadBuf, WireError, WriteBuf};

/// Which transfer protocol a type prefers (paper §II-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireKind {
    /// Plain-old-data fast path (`memcpy`-style encoding).
    Trivial,
    /// Generic archive serialization (Boost.Serialization analog).
    Archive,
    /// Two-stage split-metadata protocol with RMA payload transfer.
    SplitMd,
}

/// Serializable message type: every task ID and every data value flowing
/// through a TTG edge must implement `Wire`.
///
/// The default implementations of the `split_*` hooks degrade the SplitMd
/// protocol to whole-object archive transfer, so only types that declare
/// `KIND = WireKind::SplitMd` need to override them.
pub trait Wire: Sized + Send + 'static {
    /// Preferred transfer protocol for this type.
    const KIND: WireKind = WireKind::Archive;

    /// Serialize `self` into `b`.
    fn encode(&self, b: &mut WriteBuf);

    /// Deserialize a value from `r`.
    fn decode(r: &mut ReadBuf<'_>) -> Result<Self, WireError>;

    /// Serialized size in bytes. The default performs a throw-away encode;
    /// hot types should override with an O(1) computation.
    fn wire_size(&self) -> usize {
        let mut b = WriteBuf::new();
        self.encode(&mut b);
        b.len()
    }

    /// Bytes a semantic `clone` of this value must copy — consumed by the
    /// runtime's copy-plane accounting (`cow_clones` / `cloned_bytes`).
    /// Defaults to the serialized size; reference-counted wrappers whose
    /// clone is a refcount bump report `0`.
    fn clone_cost_bytes(&self) -> usize {
        self.wire_size()
    }

    /// Serialize a contiguous slice of values. The default loops per
    /// element; trivial fixed-size types override this with a single bulk
    /// copy, which is what makes `Vec<f64>`-style payloads hit memory
    /// bandwidth instead of per-element call overhead.
    fn encode_slice(xs: &[Self], b: &mut WriteBuf) {
        for x in xs {
            x.encode(b);
        }
    }

    /// Deserialize exactly `n` values (inverse of [`Wire::encode_slice`]).
    /// Callers must validate `n` against the buffer before trusting it with
    /// an allocation; `Vec::<T>::decode` does this.
    fn decode_slice(r: &mut ReadBuf<'_>, n: usize) -> Result<Vec<Self>, WireError> {
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(Self::decode(r)?);
        }
        Ok(v)
    }

    /// Serialized size of a slice in bytes. Trivial fixed-size types reduce
    /// this to a multiplication.
    fn slice_wire_size(xs: &[Self]) -> usize {
        xs.iter().map(|x| x.wire_size()).sum()
    }

    /// SplitMd stage 1 (sender): encode only the metadata needed to allocate
    /// the object on the receiving side.
    fn split_encode_md(&self, b: &mut WriteBuf) {
        self.encode(b);
    }

    /// SplitMd stage 1 (receiver): allocate an object from metadata. The
    /// payload is not yet valid — it is attached in stage 2.
    fn split_decode_md(r: &mut ReadBuf<'_>) -> Result<Self, WireError> {
        Self::decode(r)
    }

    /// SplitMd stage 2 (sender): the contiguous payload to expose via RMA.
    /// `None` means the type has no split payload and the metadata carried
    /// everything.
    fn split_payload(&self) -> Option<Vec<u8>> {
        None
    }

    /// SplitMd stage 2 (receiver): attach the RMA-fetched payload bytes to a
    /// metadata-allocated object.
    fn split_attach(&mut self, _bytes: &[u8]) {}
}

macro_rules! wire_prim {
    ($ty:ty, $put:ident, $get:ident, $size:expr) => {
        impl Wire for $ty {
            const KIND: WireKind = WireKind::Trivial;
            #[inline]
            fn encode(&self, b: &mut WriteBuf) {
                b.$put(*self);
            }
            #[inline]
            fn decode(r: &mut ReadBuf<'_>) -> Result<Self, WireError> {
                r.$get()
            }
            #[inline]
            fn wire_size(&self) -> usize {
                $size
            }
            #[inline]
            fn encode_slice(xs: &[Self], b: &mut WriteBuf) {
                #[cfg(target_endian = "little")]
                {
                    // The wire format is little-endian, so on LE targets the
                    // in-memory representation of a primitive slice is
                    // byte-identical to its encoding: copy it wholesale.
                    let bytes = unsafe {
                        std::slice::from_raw_parts(
                            xs.as_ptr() as *const u8,
                            std::mem::size_of_val(xs),
                        )
                    };
                    b.put_bytes(bytes);
                }
                #[cfg(not(target_endian = "little"))]
                for x in xs {
                    x.encode(b);
                }
            }
            #[inline]
            fn decode_slice(r: &mut ReadBuf<'_>, n: usize) -> Result<Vec<Self>, WireError> {
                let nbytes = n
                    .checked_mul($size)
                    .ok_or_else(|| WireError::new("slice byte length overflows"))?;
                // Bounds-check (and advance) before allocating, so a corrupt
                // count fails instead of reserving an absurd buffer.
                let bytes = r.take(nbytes)?;
                #[cfg(target_endian = "little")]
                {
                    let mut v: Vec<$ty> = Vec::with_capacity(n);
                    // SAFETY: every bit pattern is a valid primitive, `v`
                    // has capacity for `n` elements, and `bytes` holds
                    // exactly `n * size_of::<$ty>()` bytes.
                    unsafe {
                        std::ptr::copy_nonoverlapping(
                            bytes.as_ptr(),
                            v.as_mut_ptr() as *mut u8,
                            nbytes,
                        );
                        v.set_len(n);
                    }
                    Ok(v)
                }
                #[cfg(not(target_endian = "little"))]
                {
                    let mut sub = ReadBuf::new(bytes);
                    let mut v = Vec::with_capacity(n);
                    for _ in 0..n {
                        v.push(<$ty as Wire>::decode(&mut sub)?);
                    }
                    Ok(v)
                }
            }
            #[inline]
            fn slice_wire_size(xs: &[Self]) -> usize {
                xs.len() * $size
            }
        }
    };
}

wire_prim!(u8, put_u8, get_u8, 1);
wire_prim!(u16, put_u16, get_u16, 2);
wire_prim!(u32, put_u32, get_u32, 4);
wire_prim!(u64, put_u64, get_u64, 8);
wire_prim!(i8, put_i8, get_i8, 1);
wire_prim!(i16, put_i16, get_i16, 2);
wire_prim!(i32, put_i32, get_i32, 4);
wire_prim!(i64, put_i64, get_i64, 8);
wire_prim!(f32, put_f32, get_f32, 4);
wire_prim!(f64, put_f64, get_f64, 8);

impl Wire for usize {
    const KIND: WireKind = WireKind::Trivial;
    #[inline]
    fn encode(&self, b: &mut WriteBuf) {
        b.put_usize(*self);
    }
    #[inline]
    fn decode(r: &mut ReadBuf<'_>) -> Result<Self, WireError> {
        r.get_usize()
    }
    #[inline]
    fn wire_size(&self) -> usize {
        8
    }
}

impl Wire for bool {
    const KIND: WireKind = WireKind::Trivial;
    #[inline]
    fn encode(&self, b: &mut WriteBuf) {
        b.put_u8(*self as u8);
    }
    #[inline]
    fn decode(r: &mut ReadBuf<'_>) -> Result<Self, WireError> {
        Ok(r.get_u8()? != 0)
    }
    #[inline]
    fn wire_size(&self) -> usize {
        1
    }
}

impl Wire for () {
    const KIND: WireKind = WireKind::Trivial;
    #[inline]
    fn encode(&self, _b: &mut WriteBuf) {}
    #[inline]
    fn decode(_r: &mut ReadBuf<'_>) -> Result<Self, WireError> {
        Ok(())
    }
    #[inline]
    fn wire_size(&self) -> usize {
        0
    }
}

impl Wire for String {
    #[inline]
    fn encode(&self, b: &mut WriteBuf) {
        b.put_len_bytes(self.as_bytes());
    }
    #[inline]
    fn decode(r: &mut ReadBuf<'_>) -> Result<Self, WireError> {
        let bytes = r.get_len_bytes()?;
        String::from_utf8(bytes.to_vec()).map_err(|e| WireError::new(e.to_string()))
    }
    #[inline]
    fn wire_size(&self) -> usize {
        8 + self.len()
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, b: &mut WriteBuf) {
        b.put_usize(self.len());
        T::encode_slice(self, b);
    }
    fn decode(r: &mut ReadBuf<'_>) -> Result<Self, WireError> {
        let n = r.get_usize()?;
        // Guard against a corrupt length causing a huge allocation.
        if n > r.remaining() && std::mem::size_of::<T>() > 0 {
            return Err(WireError::new(format!("vec length {} exceeds buffer", n)));
        }
        T::decode_slice(r, n)
    }
    fn wire_size(&self) -> usize {
        8 + T::slice_wire_size(self)
    }
}

/// `Arc<T>` is wire-transparent: it serializes exactly like `T` (the
/// refcount is a process-local artifact), decodes into a fresh uniquely
/// owned allocation, and keeps `T`'s protocol — including split-metadata.
/// Its distinguishing property is `clone_cost_bytes() == 0`: cloning an
/// `Arc` is a refcount bump, which is what lets applications opt broadcast
/// edges into the zero-copy value plane (`Edge<K, Arc<Tile>>`) without
/// changing the wire format.
impl<T: Wire + Sync> Wire for std::sync::Arc<T> {
    const KIND: WireKind = T::KIND;
    #[inline]
    fn encode(&self, b: &mut WriteBuf) {
        T::encode(self, b);
    }
    #[inline]
    fn decode(r: &mut ReadBuf<'_>) -> Result<Self, WireError> {
        Ok(std::sync::Arc::new(T::decode(r)?))
    }
    #[inline]
    fn wire_size(&self) -> usize {
        T::wire_size(self)
    }
    #[inline]
    fn clone_cost_bytes(&self) -> usize {
        0
    }
    fn split_encode_md(&self, b: &mut WriteBuf) {
        T::split_encode_md(self, b);
    }
    fn split_decode_md(r: &mut ReadBuf<'_>) -> Result<Self, WireError> {
        Ok(std::sync::Arc::new(T::split_decode_md(r)?))
    }
    fn split_payload(&self) -> Option<Vec<u8>> {
        T::split_payload(self)
    }
    fn split_attach(&mut self, bytes: &[u8]) {
        // Only reached on freshly decoded (uniquely owned) values: stage 2
        // of splitmd attaches the RMA payload before the value is shared.
        std::sync::Arc::get_mut(self)
            .expect("split_attach on a shared Arc")
            .split_attach(bytes);
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, b: &mut WriteBuf) {
        match self {
            None => b.put_u8(0),
            Some(x) => {
                b.put_u8(1);
                x.encode(b);
            }
        }
    }
    fn decode(r: &mut ReadBuf<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            t => Err(WireError::new(format!("bad Option tag {}", t))),
        }
    }
}

impl<T: Wire + Copy + Default, const N: usize> Wire for [T; N] {
    fn encode(&self, b: &mut WriteBuf) {
        T::encode_slice(self, b);
    }
    fn decode(r: &mut ReadBuf<'_>) -> Result<Self, WireError> {
        let v = T::decode_slice(r, N)?;
        let mut out = [T::default(); N];
        out.copy_from_slice(&v);
        Ok(out)
    }
    fn wire_size(&self) -> usize {
        T::slice_wire_size(self)
    }
}

macro_rules! wire_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Wire),+> Wire for ($($name,)+) {
            fn encode(&self, b: &mut WriteBuf) {
                $(self.$idx.encode(b);)+
            }
            fn decode(r: &mut ReadBuf<'_>) -> Result<Self, WireError> {
                Ok(($($name::decode(r)?,)+))
            }
        }
    };
}

wire_tuple!(A: 0);
wire_tuple!(A: 0, B: 1);
wire_tuple!(A: 0, B: 1, C: 2);
wire_tuple!(A: 0, B: 1, C: 2, D: 3);
wire_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
wire_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Implement [`Wire`] for a plain struct by listing its fields.
///
/// ```
/// use ttg_comm::wire_struct;
/// #[derive(Debug, Clone, PartialEq)]
/// struct P { x: i32, y: f64 }
/// wire_struct!(P { x, y });
/// ```
#[macro_export]
macro_rules! wire_struct {
    ($ty:ident { $($field:ident),* $(,)? }) => {
        impl $crate::Wire for $ty {
            fn encode(&self, b: &mut $crate::WriteBuf) {
                $( $crate::Wire::encode(&self.$field, b); )*
            }
            fn decode(r: &mut $crate::ReadBuf<'_>) -> Result<Self, $crate::WireError> {
                Ok($ty {
                    $( $field: $crate::Wire::decode(r)?, )*
                })
            }
        }
    };
}

/// Encode a `Vec<f64>` payload as raw little-endian bytes.
///
/// Helper for SplitMd types whose contiguous segment is an `f64` buffer
/// (e.g. matrix tiles, spectral coefficients).
pub fn f64s_to_bytes(data: &[f64]) -> Vec<u8> {
    let mut b = WriteBuf::with_capacity(data.len() * 8);
    f64::encode_slice(data, &mut b);
    b.into_vec()
}

/// Decode raw little-endian bytes into an `f64` buffer (inverse of
/// [`f64s_to_bytes`]). Trailing bytes past the last whole `f64` are
/// ignored, matching the historical `chunks_exact` behavior.
pub fn bytes_to_f64s(bytes: &[u8]) -> Vec<f64> {
    let n = bytes.len() / 8;
    let mut r = ReadBuf::new(&bytes[..n * 8]);
    f64::decode_slice(&mut r, n).expect("buffer holds exactly n f64s")
}

/// Serialize a value to a standalone byte vector (archive protocol).
pub fn to_bytes<T: Wire>(v: &T) -> Vec<u8> {
    let mut b = WriteBuf::with_capacity(v.wire_size());
    v.encode(&mut b);
    b.into_vec()
}

/// Deserialize a value from a byte slice (archive protocol).
pub fn from_bytes<T: Wire>(bytes: &[u8]) -> Result<T, WireError> {
    let mut r = ReadBuf::new(bytes);
    T::decode(&mut r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Point {
        x: i32,
        y: f64,
        tag: String,
    }
    wire_struct!(Point { x, y, tag });

    #[test]
    fn struct_roundtrip() {
        let p = Point {
            x: -3,
            y: 2.5,
            tag: "hello".into(),
        };
        let bytes = to_bytes(&p);
        let q: Point = from_bytes(&bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn nested_collections_roundtrip() {
        let v: Vec<Option<(u32, String)>> =
            vec![Some((1, "a".into())), None, Some((9, String::new()))];
        let bytes = to_bytes(&v);
        let w: Vec<Option<(u32, String)>> = from_bytes(&bytes).unwrap();
        assert_eq!(v, w);
    }

    #[test]
    fn arrays_and_tuples() {
        let a: [i64; 4] = [1, -2, 3, -4];
        let t = (a, 7u8, 1.5f32);
        let bytes = to_bytes(&t);
        let u: ([i64; 4], u8, f32) = from_bytes(&bytes).unwrap();
        assert_eq!(t, u);
    }

    #[test]
    fn corrupt_vec_length_rejected() {
        let mut b = WriteBuf::new();
        b.put_usize(usize::MAX / 2);
        let bytes = b.into_vec();
        let r: Result<Vec<u64>, _> = from_bytes(&bytes);
        assert!(r.is_err());
    }

    #[test]
    fn f64_bytes_roundtrip() {
        let xs = vec![0.0, -1.5, f64::MAX, f64::MIN_POSITIVE, 42.0];
        let b = f64s_to_bytes(&xs);
        assert_eq!(b.len(), xs.len() * 8);
        assert_eq!(bytes_to_f64s(&b), xs);
    }

    #[test]
    fn slice_roundtrip_all_primitives() {
        macro_rules! check {
            ($ty:ty, $vals:expr) => {{
                let xs: Vec<$ty> = $vals;
                let bytes = to_bytes(&xs);
                assert_eq!(bytes.len(), xs.wire_size());
                let ys: Vec<$ty> = from_bytes(&bytes).unwrap();
                assert_eq!(xs, ys);
            }};
        }
        check!(u8, vec![0, 1, 255]);
        check!(u16, vec![0, 0xbeef]);
        check!(u32, vec![u32::MAX, 7]);
        check!(u64, vec![u64::MAX, 0]);
        check!(i8, vec![-128, 127]);
        check!(i16, vec![-1, 1]);
        check!(i32, vec![i32::MIN, i32::MAX]);
        check!(i64, vec![-9, 9]);
        check!(f32, vec![1.5, -0.0, f32::MAX]);
        check!(f64, vec![std::f64::consts::PI, f64::MIN]);
        check!(f64, Vec::new());
    }

    #[test]
    fn decode_slice_underrun_is_error() {
        let xs = vec![1.0f64, 2.0];
        let bytes = f64s_to_bytes(&xs);
        let mut r = ReadBuf::new(&bytes);
        assert!(f64::decode_slice(&mut r, 3).is_err());
        // Cursor untouched on failure: a whole-slice read still works.
        assert_eq!(f64::decode_slice(&mut r, 2).unwrap(), xs);
    }

    #[test]
    fn bulk_and_per_element_encodings_agree() {
        let xs = vec![0.25f64, -3.75, 1e300];
        let mut bulk = WriteBuf::new();
        f64::encode_slice(&xs, &mut bulk);
        let mut loop_b = WriteBuf::new();
        for x in &xs {
            x.encode(&mut loop_b);
        }
        assert_eq!(bulk.as_slice(), loop_b.as_slice());
    }

    #[test]
    fn kinds() {
        assert_eq!(<u64 as Wire>::KIND, WireKind::Trivial);
        assert_eq!(<String as Wire>::KIND, WireKind::Archive);
    }

    #[test]
    fn wire_size_matches_encoding() {
        let p = Point {
            x: 1,
            y: 0.0,
            tag: "abcd".into(),
        };
        assert_eq!(p.wire_size(), to_bytes(&p).len());
        assert_eq!(7u64.wire_size(), 8);
        assert_eq!(().wire_size(), 0);
    }
}
