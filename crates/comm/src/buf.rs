//! Little-endian binary buffers used by the [`Wire`](crate::wire::Wire)
//! serialization protocols.
//!
//! These are deliberately minimal, append-only/read-forward buffers — the
//! equivalent of the paper's "custom archives optimized for high-performance
//! serialization into in-memory buffers" (Section II-C).

use std::fmt;

/// Error produced when decoding runs past the end of a buffer or meets an
/// invalid encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Human-readable description of what failed to decode.
    pub msg: String,
}

impl WireError {
    /// Create a new error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        WireError { msg: msg.into() }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire decode error: {}", self.msg)
    }
}

impl std::error::Error for WireError {}

/// Append-only serialization buffer.
#[derive(Default, Debug)]
pub struct WriteBuf {
    buf: Vec<u8>,
}

macro_rules! put_prim {
    ($name:ident, $ty:ty) => {
        /// Append a primitive in little-endian byte order.
        #[inline]
        pub fn $name(&mut self, v: $ty) {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    };
}

impl WriteBuf {
    /// Create an empty buffer.
    pub fn new() -> Self {
        WriteBuf { buf: Vec::new() }
    }

    /// Create a buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        WriteBuf {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Create a buffer with at least `cap` capacity, reusing a recycled
    /// allocation from the [`crate::pool`] free-list when one is available.
    /// Callers on the receive side return the backing `Vec` with
    /// [`crate::pool::recycle`] once the message is consumed.
    pub fn pooled(cap: usize) -> Self {
        WriteBuf {
            buf: crate::pool::acquire(cap),
        }
    }

    put_prim!(put_u8, u8);
    put_prim!(put_u16, u16);
    put_prim!(put_u32, u32);
    put_prim!(put_u64, u64);
    put_prim!(put_i8, i8);
    put_prim!(put_i16, i16);
    put_prim!(put_i32, i32);
    put_prim!(put_i64, i64);
    put_prim!(put_f32, f32);
    put_prim!(put_f64, f64);

    /// Append a `usize` encoded as a `u64` for portability.
    #[inline]
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append raw bytes without a length prefix.
    #[inline]
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append bytes with a `u64` length prefix.
    #[inline]
    pub fn put_len_bytes(&mut self, bytes: &[u8]) {
        self.put_usize(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the buffer, yielding the serialized bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the serialized bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// Read-forward deserialization cursor over a byte slice.
#[derive(Debug)]
pub struct ReadBuf<'a> {
    buf: &'a [u8],
    pos: usize,
}

macro_rules! get_prim {
    ($name:ident, $ty:ty, $n:expr) => {
        /// Read a primitive in little-endian byte order.
        #[inline]
        pub fn $name(&mut self) -> Result<$ty, WireError> {
            let bytes = self.take($n)?;
            let mut arr = [0u8; $n];
            arr.copy_from_slice(bytes);
            Ok(<$ty>::from_le_bytes(arr))
        }
    };
}

impl<'a> ReadBuf<'a> {
    /// Create a cursor over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        ReadBuf { buf, pos: 0 }
    }

    /// Take `n` raw bytes, advancing the cursor.
    #[inline]
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::new(format!(
                "buffer underrun: need {} bytes at {}, have {}",
                n,
                self.pos,
                self.buf.len()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    get_prim!(get_u8, u8, 1);
    get_prim!(get_u16, u16, 2);
    get_prim!(get_u32, u32, 4);
    get_prim!(get_u64, u64, 8);
    get_prim!(get_i8, i8, 1);
    get_prim!(get_i16, i16, 2);
    get_prim!(get_i32, i32, 4);
    get_prim!(get_i64, i64, 8);
    get_prim!(get_f32, f32, 4);
    get_prim!(get_f64, f64, 8);

    /// Read a `usize` that was encoded as `u64`.
    #[inline]
    pub fn get_usize(&mut self) -> Result<usize, WireError> {
        Ok(self.get_u64()? as usize)
    }

    /// Read a `u64`-length-prefixed byte run.
    #[inline]
    pub fn get_len_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.get_usize()?;
        self.take(n)
    }

    /// Bytes remaining past the cursor.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current cursor offset.
    pub fn position(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut w = WriteBuf::new();
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_i64(-42);
        w.put_f64(std::f64::consts::PI);
        w.put_usize(123_456);
        let v = w.into_vec();
        let mut r = ReadBuf::new(&v);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap(), std::f64::consts::PI);
        assert_eq!(r.get_usize().unwrap(), 123_456);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn roundtrip_len_bytes() {
        let mut w = WriteBuf::new();
        w.put_len_bytes(b"hello");
        w.put_len_bytes(b"");
        w.put_len_bytes(b"world");
        let v = w.into_vec();
        let mut r = ReadBuf::new(&v);
        assert_eq!(r.get_len_bytes().unwrap(), b"hello");
        assert_eq!(r.get_len_bytes().unwrap(), b"");
        assert_eq!(r.get_len_bytes().unwrap(), b"world");
    }

    #[test]
    fn underrun_is_error() {
        let v = vec![1u8, 2];
        let mut r = ReadBuf::new(&v);
        assert!(r.get_u64().is_err());
        // cursor must not advance on failure
        assert_eq!(r.get_u16().unwrap(), 0x0201);
    }

    #[test]
    fn empty_buffer() {
        let w = WriteBuf::new();
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
        let v = w.into_vec();
        let mut r = ReadBuf::new(&v);
        assert!(r.get_u8().is_err());
    }
}
